/** @file Tests for the summary-statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "util/stats.hh"

namespace bpsim
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.push(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MatchesDirectComputation)
{
    Rng rng(11);
    RunningStat s;
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble() * 100.0 - 50.0;
        values.push_back(v);
        s.push(v);
    }
    double direct_mean = 0.0;
    for (double v : values)
        direct_mean += v;
    direct_mean /= static_cast<double>(values.size());
    double direct_var = 0.0;
    for (double v : values)
        direct_var += (v - direct_mean) * (v - direct_mean);
    direct_var /= static_cast<double>(values.size() - 1);
    EXPECT_NEAR(s.mean(), direct_mean, 1e-9);
    EXPECT_NEAR(s.variance(), direct_var, 1e-7);
}

TEST(Mean, Basics)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(mean({3.0}), 3.0);
    EXPECT_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Geomean, Basics)
{
    EXPECT_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0, 4.0}), 4.0, 1e-12);
}

TEST(Geomean, ZeroDoesNotCollapseToZero)
{
    // Clamped to a tiny epsilon instead of log(0).
    EXPECT_GT(geomean({0.0, 100.0}), 0.0);
}

TEST(Geomean, LeqArithmeticMean)
{
    Rng rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> values;
        for (int i = 0; i < 10; ++i)
            values.push_back(0.5 + rng.nextDouble() * 10.0);
        EXPECT_LE(geomean(values), mean(values) + 1e-9);
    }
}

TEST(Percent, Basics)
{
    EXPECT_EQ(percent(0, 0), 0.0);
    EXPECT_EQ(percent(5, 0), 0.0);
    EXPECT_EQ(percent(1, 4), 25.0);
    EXPECT_EQ(percent(4, 4), 100.0);
}

TEST(RelativeChange, Basics)
{
    EXPECT_EQ(relativeChangePercent(0.0, 5.0), 0.0);
    EXPECT_EQ(relativeChangePercent(10.0, 15.0), 50.0);
    EXPECT_EQ(relativeChangePercent(10.0, 5.0), -50.0);
}

} // namespace
} // namespace bpsim
