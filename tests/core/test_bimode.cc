/** @file Tests for the bi-mode predictor (the paper's contribution). */

#include <gtest/gtest.h>

#include <vector>

#include "core/bimode.hh"
#include "predictors/gshare.hh"

namespace bpsim
{
namespace
{

/** Small config with no history so direction indices are pure
 *  address bits — handy for constructing exact aliasing scenarios. */
BiModeConfig
tinyConfig()
{
    BiModeConfig cfg;
    cfg.directionIndexBits = 2;
    cfg.choiceIndexBits = 4;
    cfg.historyBits = 0;
    return cfg;
}

TEST(BiMode, PaperInitialization)
{
    BiModePredictor predictor(BiModeConfig::canonical(4));
    // Footnote 2: choice weakly-taken, taken bank weakly-taken,
    // not-taken bank weakly-not-taken.
    for (std::size_t i = 0; i < predictor.choiceTable().size(); ++i)
        EXPECT_EQ(predictor.choiceTable().value(i), 2u);
    for (std::size_t i = 0; i < predictor.takenBank().size(); ++i)
        EXPECT_EQ(predictor.takenBank().value(i), 2u);
    for (std::size_t i = 0; i < predictor.notTakenBank().size(); ++i)
        EXPECT_EQ(predictor.notTakenBank().value(i), 1u);
}

TEST(BiMode, InitialPredictionIsTaken)
{
    BiModePredictor predictor(BiModeConfig::canonical(6));
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(BiMode, ChoiceSelectsBank)
{
    BiModePredictor predictor(tinyConfig());
    const std::uint64_t pc = 0x1000;
    // Fresh: choice says taken -> taken bank.
    EXPECT_EQ(predictor.predictDetailed(pc).bank,
              BiModePredictor::kTakenBank);
    // Train not-taken twice: choice drops to the not-taken side.
    predictor.update(pc, false);
    predictor.update(pc, false);
    EXPECT_EQ(predictor.predictDetailed(pc).bank,
              BiModePredictor::kNotTakenBank);
}

TEST(BiMode, PartialUpdateLeavesUnselectedBankUntouched)
{
    BiModePredictor predictor(tinyConfig());
    const std::uint64_t pc = 0x1000;
    const std::size_t index = predictor.directionIndexFor(pc);
    const std::uint8_t nt_before = predictor.notTakenBank().value(index);
    // Choice selects the taken bank; updating must not write the
    // not-taken bank.
    predictor.update(pc, true);
    predictor.update(pc, false);
    EXPECT_EQ(predictor.notTakenBank().value(index), nt_before);
}

TEST(BiMode, FullUpdateAblationWritesBothBanks)
{
    BiModeConfig cfg = tinyConfig();
    cfg.partialUpdate = false;
    BiModePredictor predictor(cfg);
    const std::uint64_t pc = 0x1000;
    const std::size_t index = predictor.directionIndexFor(pc);
    const std::uint8_t nt_before = predictor.notTakenBank().value(index);
    predictor.update(pc, true);
    EXPECT_EQ(predictor.notTakenBank().value(index), nt_before + 1);
}

TEST(BiMode, ChoiceUpdateException)
{
    // The paper's rule: the choice predictor is NOT updated when its
    // choice disagrees with the outcome but the selected direction
    // counter predicted correctly.
    BiModePredictor predictor(tinyConfig());
    // pc_a and pc_b share a direction-bank slot (low 2 word-address
    // bits) but have distinct choice entries (4 bits).
    const std::uint64_t pc_a = 0x1000;
    const std::uint64_t pc_b = 0x1010;
    ASSERT_EQ(predictor.directionIndexFor(pc_a),
              predictor.directionIndexFor(pc_b));
    ASSERT_NE(predictor.choiceIndexFor(pc_a),
              predictor.choiceIndexFor(pc_b));

    // Drive the shared taken-bank counter to strongly-not-taken via
    // pc_a (whose choice is still taken-side during the updates).
    predictor.update(pc_a, false);
    ASSERT_EQ(predictor.takenBank().value(
                  predictor.directionIndexFor(pc_a)), 1u);

    // Now pc_b: choice (weakly-taken) selects the taken bank, which
    // predicts not-taken; the outcome is not-taken. Choice was
    // "wrong" but the direction counter was right -> choice must
    // stay at weakly-taken.
    const std::size_t choice_b = predictor.choiceIndexFor(pc_b);
    ASSERT_EQ(predictor.choiceTable().value(choice_b), 2u);
    ASSERT_FALSE(predictor.predict(pc_b));
    predictor.update(pc_b, false);
    EXPECT_EQ(predictor.choiceTable().value(choice_b), 2u)
        << "choice must not be evicted from a bank serving it well";
}

TEST(BiMode, AlwaysUpdateChoiceAblationRemovesException)
{
    BiModeConfig cfg = tinyConfig();
    cfg.alwaysUpdateChoice = true;
    BiModePredictor predictor(cfg);
    const std::uint64_t pc_a = 0x1000, pc_b = 0x1010;
    predictor.update(pc_a, false);
    const std::size_t choice_b = predictor.choiceIndexFor(pc_b);
    ASSERT_EQ(predictor.choiceTable().value(choice_b), 2u);
    predictor.update(pc_b, false);
    EXPECT_EQ(predictor.choiceTable().value(choice_b), 1u)
        << "ablation: choice is trained on every branch";
}

TEST(BiMode, ChoiceTrainsOnAgreement)
{
    BiModePredictor predictor(tinyConfig());
    const std::uint64_t pc = 0x1000;
    const std::size_t choice = predictor.choiceIndexFor(pc);
    ASSERT_EQ(predictor.choiceTable().value(choice), 2u);
    predictor.update(pc, true);
    EXPECT_EQ(predictor.choiceTable().value(choice), 3u);
}

TEST(BiMode, DeAliasesOppositeBiasedBranches)
{
    // The headline mechanism: two strongly but oppositely biased
    // branches that collide in a gshare PHT slot destroy each other;
    // bi-mode steers them into different banks and predicts both.
    BiModeConfig cfg;
    cfg.directionIndexBits = 4;
    cfg.choiceIndexBits = 8;
    cfg.historyBits = 0;
    BiModePredictor bimode(cfg);
    GsharePredictor gshare(4, 0);

    // 4 direction-index bits: pcs 64 bytes apart collide.
    const std::uint64_t pc_taken = 0x1000;
    const std::uint64_t pc_not_taken = 0x1040;
    ASSERT_EQ(bimode.directionIndexFor(pc_taken),
              bimode.directionIndexFor(pc_not_taken));

    int bimode_wrong = 0, gshare_wrong = 0;
    for (int i = 0; i < 200; ++i) {
        bimode_wrong += bimode.predict(pc_taken) != true;
        bimode.update(pc_taken, true);
        gshare_wrong += gshare.predict(pc_taken) != true;
        gshare.update(pc_taken, true);

        bimode_wrong += bimode.predict(pc_not_taken) != false;
        bimode.update(pc_not_taken, false);
        gshare_wrong += gshare.predict(pc_not_taken) != false;
        gshare.update(pc_not_taken, false);
    }
    EXPECT_LE(bimode_wrong, 4)
        << "bi-mode must absorb the alias after brief training";
    EXPECT_GE(gshare_wrong, 150)
        << "the shared gshare counter must oscillate";
}

TEST(BiMode, CounterIdsAreBankMajor)
{
    BiModePredictor predictor(tinyConfig());
    const std::uint64_t pc = 0x1000;
    const std::uint64_t bank_size = 1u << 2;
    // Fresh prediction comes from the taken bank (bank 1).
    PredictionDetail detail = predictor.predictDetailed(pc);
    EXPECT_EQ(detail.bank, BiModePredictor::kTakenBank);
    EXPECT_GE(detail.counterId, bank_size);
    EXPECT_LT(detail.counterId, predictor.directionCounters());
    // After the choice flips, ids come from the not-taken bank.
    predictor.update(pc, false);
    predictor.update(pc, false);
    detail = predictor.predictDetailed(pc);
    EXPECT_EQ(detail.bank, BiModePredictor::kNotTakenBank);
    EXPECT_LT(detail.counterId, bank_size);
}

TEST(BiMode, HistoryAffectsDirectionIndexOnly)
{
    BiModeConfig cfg;
    cfg.directionIndexBits = 6;
    cfg.choiceIndexBits = 6;
    cfg.historyBits = 6;
    BiModePredictor predictor(cfg);
    const std::uint64_t pc = 0x1000;
    const std::size_t choice_before = predictor.choiceIndexFor(pc);
    const std::size_t dir_before = predictor.directionIndexFor(pc);
    predictor.update(pc, true);
    EXPECT_EQ(predictor.choiceIndexFor(pc), choice_before)
        << "the choice table is indexed by address only";
    EXPECT_EQ(predictor.directionIndexFor(pc), dir_before ^ 1u)
        << "history xors into the direction index";
}

TEST(BiMode, StorageAccountingCanonical)
{
    // Canonical d: choice 2^d + two banks of 2^d = 3 * 2^d counters.
    BiModePredictor predictor(BiModeConfig::canonical(10));
    EXPECT_EQ(predictor.counterBits(), 3u * 1024 * 2);
    EXPECT_EQ(predictor.directionCounters(), 2u * 1024);
    EXPECT_EQ(predictor.storageBits(), 3u * 1024 * 2 + 10);
}

TEST(BiMode, NaturalCostIsOneAndAHalfTimesSmallerGshare)
{
    // The paper: bi-mode with 2^d-counter banks costs 1.5x the
    // gshare whose table equals the two direction banks combined
    // (the choice table is the 50% extra) — Figure 6's example is
    // 128+2x128 = 384 counters vs 256.
    BiModePredictor bimode(BiModeConfig::canonical(10));
    GsharePredictor gshare(11, 11);
    EXPECT_EQ(bimode.counterBits() * 2, gshare.counterBits() * 3);
}

TEST(BiMode, ResetReproducesFreshBehavior)
{
    BiModePredictor predictor(BiModeConfig::canonical(6));
    BiModePredictor fresh(BiModeConfig::canonical(6));
    std::vector<bool> outcomes;
    std::uint64_t pc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        predictor.update(pc, i % 3 == 0);
        pc += 4 * ((i % 5) + 1);
    }
    predictor.reset();
    pc = 0x1000;
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(predictor.predict(pc), fresh.predict(pc)) << i;
        predictor.update(pc, i % 3 == 0);
        fresh.update(pc, i % 3 == 0);
        pc += 4 * ((i % 5) + 1);
    }
}

TEST(BiMode, NameReflectsConfigAndAblations)
{
    EXPECT_EQ(BiModePredictor(BiModeConfig::canonical(11)).name(),
              "bimode(d=11,c=11,h=11)");
    BiModeConfig cfg = BiModeConfig::canonical(4);
    cfg.partialUpdate = false;
    EXPECT_NE(BiModePredictor(cfg).name().find("full-update"),
              std::string::npos);
    cfg = BiModeConfig::canonical(4);
    cfg.alwaysUpdateChoice = true;
    EXPECT_NE(BiModePredictor(cfg).name().find("always-choice"),
              std::string::npos);
}

TEST(BiModeDeath, HistoryWiderThanDirectionIndexIsFatal)
{
    BiModeConfig cfg;
    cfg.directionIndexBits = 4;
    cfg.historyBits = 5;
    EXPECT_EXIT(BiModePredictor{cfg}, ::testing::ExitedWithCode(1),
                "cannot exceed");
}

/** Canonical configs across sizes keep every invariant. */
class BiModeSizeTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BiModeSizeTest, DetailInRange)
{
    BiModePredictor predictor(BiModeConfig::canonical(GetParam()));
    std::uint64_t pc = 0x400000;
    for (int i = 0; i < 500; ++i) {
        const PredictionDetail detail = predictor.predictDetailed(pc);
        EXPECT_TRUE(detail.usesCounter);
        EXPECT_LT(detail.counterId, predictor.directionCounters());
        EXPECT_LE(detail.bank, 1u);
        predictor.update(pc, (i / 3) % 2 == 0);
        pc += 4 * ((i % 9) + 1);
    }
}

TEST_P(BiModeSizeTest, LearnsStrongBiasBothDirections)
{
    BiModePredictor predictor(BiModeConfig::canonical(GetParam()));
    for (int i = 0; i < 50; ++i) {
        predictor.update(0x1000, true);
        predictor.update(0x2004, false);
    }
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_FALSE(predictor.predict(0x2004));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BiModeSizeTest,
                         ::testing::Values(4, 7, 9, 11, 14));

} // namespace
} // namespace bpsim
