/** @file Registry-driven construction and schema tests.
 *
 * These tests enumerate the compile-time registry through its runtime
 * projection (predictorKindInfos()) instead of hand-maintained kind
 * lists: registering a new predictor automatically subjects it to
 * every check here, and a registry entry with a broken documented
 * example cannot land.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/factory.hh"

namespace bpsim
{
namespace
{

/** A spread of pcs wide enough to touch several table entries. */
std::vector<std::uint64_t>
probePcs()
{
    std::vector<std::uint64_t> pcs;
    for (std::uint64_t i = 0; i < 64; ++i)
        pcs.push_back(0x1000 + i * 4);
    return pcs;
}

TEST(Registry, KindInfosMatchKnownKinds)
{
    const auto infos = predictorKindInfos();
    const auto kinds = knownPredictorKinds();
    ASSERT_EQ(infos.size(), kinds.size());
    for (std::size_t i = 0; i < infos.size(); ++i)
        EXPECT_EQ(infos[i].kind, kinds[i]);
}

TEST(Registry, EveryEntryIsDocumented)
{
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        EXPECT_FALSE(info.description.empty()) << info.kind;
        EXPECT_FALSE(info.example.empty()) << info.kind;
        // The example must be an instance of its own kind.
        EXPECT_EQ(info.example.substr(0, info.example.find(':')),
                  info.kind);
        for (const ParamInfo &param : info.params) {
            EXPECT_FALSE(param.key.empty()) << info.kind;
            EXPECT_FALSE(param.doc.empty())
                << info.kind << ":" << param.key;
        }
    }
}

TEST(Registry, DocumentedExampleBuildsEveryKind)
{
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        const PredictorResult result = tryMakePredictor(info.example);
        ASSERT_TRUE(result.ok())
            << info.kind << ": " << result.error;
        EXPECT_FALSE(result.predictor->name().empty()) << info.kind;
        // The paper's cost convention can only narrow the storage
        // accounting, never exceed it.
        EXPECT_GE(result.predictor->storageBits(),
                  result.predictor->counterBits())
            << info.kind;
    }
}

TEST(Registry, ResetRestoresThePowerOnState)
{
    const auto pcs = probePcs();
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        const PredictorPtr trained = makePredictor(info.example);
        const PredictorPtr fresh = makePredictor(info.example);

        // Drive the predictor away from the power-on state with a
        // pattern that flips directions.
        for (int round = 0; round < 4; ++round) {
            for (const std::uint64_t pc : pcs) {
                trained->predict(pc);
                trained->update(pc, (pc >> 2 ^ round) & 1);
            }
        }
        trained->reset();

        // After reset, predictions must match a never-used instance,
        // and a second reset must change nothing (idempotence).
        std::vector<bool> after_first;
        for (const std::uint64_t pc : pcs) {
            EXPECT_EQ(trained->predict(pc), fresh->predict(pc))
                << info.kind << " pc=" << pc;
            after_first.push_back(trained->predict(pc));
        }
        trained->reset();
        for (std::size_t i = 0; i < pcs.size(); ++i) {
            EXPECT_EQ(trained->predict(pcs[i]), after_first[i])
                << info.kind;
        }
    }
}

TEST(Registry, RequiredParamsAreEnforced)
{
    // Stripping the parameters off an example must fail construction
    // for exactly the kinds whose schema has a required key.
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        const bool has_required = std::any_of(
            info.params.begin(), info.params.end(),
            [](const ParamInfo &param) { return param.required; });
        const PredictorResult bare = tryMakePredictor(info.kind);
        EXPECT_EQ(bare.ok(), !has_required) << info.kind;
        if (has_required) {
            EXPECT_NE(bare.error.find("requires parameter"),
                      std::string::npos)
                << info.kind << ": " << bare.error;
        }
    }
}

TEST(Registry, UnknownParamKeyIsRejectedForEveryKind)
{
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        const PredictorResult result =
            tryMakePredictor(info.example + (info.params.empty()
                                                 ? ":bogus=1"
                                                 : ",bogus=1"));
        ASSERT_FALSE(result.ok()) << info.kind;
        EXPECT_NE(result.error.find("unknown parameter 'bogus'"),
                  std::string::npos)
            << info.kind << ": " << result.error;
        // The error must teach the accepted schema.
        for (const ParamInfo &param : info.params) {
            EXPECT_NE(result.error.find(param.key), std::string::npos)
                << info.kind << ": " << result.error;
        }
        if (info.params.empty()) {
            EXPECT_NE(result.error.find("takes no parameters"),
                      std::string::npos)
                << info.kind << ": " << result.error;
        }
    }
}

TEST(Registry, GrammarHelpCoversEveryKindAndKey)
{
    const std::string help = predictorGrammarHelp();
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        EXPECT_NE(help.find(info.example), std::string::npos)
            << info.kind;
        EXPECT_NE(help.find(info.description), std::string::npos)
            << info.kind;
    }
}

} // namespace
} // namespace bpsim
