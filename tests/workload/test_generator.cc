/** @file Tests for trace generation. */

#include <gtest/gtest.h>

#include "trace/trace_stats.hh"
#include "workload/generator.hh"
#include "workload/program_builder.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.name = "gen-test";
    spec.suite = "test";
    spec.staticBranches = 400;
    spec.dynamicBranches = 60'000;
    spec.seed = 21;
    return spec;
}

TEST(Generator, ProducesRequestedCount)
{
    const MemoryTrace trace = generateWorkloadTrace(smallSpec());
    EXPECT_EQ(trace.size(), 60'000u);
}

TEST(Generator, AllRecordsAreConditional)
{
    const MemoryTrace trace = generateWorkloadTrace(smallSpec());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_TRUE(trace[i].isConditional());
}

TEST(Generator, DeterministicForSameSeed)
{
    const MemoryTrace a = generateWorkloadTrace(smallSpec());
    const MemoryTrace b = generateWorkloadTrace(smallSpec());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(Generator, DifferentSeedsProduceDifferentTraces)
{
    WorkloadSpec other = smallSpec();
    other.seed = 22;
    const MemoryTrace a = generateWorkloadTrace(smallSpec());
    const MemoryTrace b = generateWorkloadTrace(other);
    std::size_t differing = 0;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        differing += !(a[i] == b[i]);
    EXPECT_GT(differing, a.size() / 10);
}

TEST(Generator, PcsComeFromTheProgram)
{
    WorkloadSpec spec = smallSpec();
    Program program = buildProgram(spec);
    std::set<std::uint64_t> valid_pcs;
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites)
            valid_pcs.insert(site.pc);
    }
    TraceGenerator generator(program, spec);
    MemoryTrace trace;
    generator.generate(5000, trace);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_TRUE(valid_pcs.count(trace[i].pc))
            << "pc 0x" << std::hex << trace[i].pc;
}

TEST(Generator, ColdSweepTouchesMostSites)
{
    const MemoryTrace trace = generateWorkloadTrace(smallSpec());
    TraceStats stats;
    auto reader = trace.reader();
    stats.observeAll(reader);
    // The cold sweep plus steady state must execute nearly the whole
    // static population (a few diamond arms may stay unexecuted).
    EXPECT_GE(stats.staticConditional(), 380u);
    EXPECT_LE(stats.staticConditional(), 400u);
}

TEST(Generator, TakenFractionIsPlausible)
{
    const MemoryTrace trace = generateWorkloadTrace(smallSpec());
    TraceStats stats;
    auto reader = trace.reader();
    stats.observeAll(reader);
    // Integer code runs 55-75% taken.
    EXPECT_GT(stats.takenFraction(), 0.4);
    EXPECT_LT(stats.takenFraction(), 0.85);
}

TEST(Generator, RestartReproducesTrace)
{
    WorkloadSpec spec = smallSpec();
    Program program = buildProgram(spec);
    TraceGenerator generator(program, spec);
    MemoryTrace first;
    generator.generate(10'000, first);
    generator.restart();
    MemoryTrace second;
    generator.generate(10'000, second);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "record " << i;
}

TEST(Generator, HotSetIsConcentrated)
{
    const MemoryTrace trace = generateWorkloadTrace(smallSpec());
    TraceStats stats;
    auto reader = trace.reader();
    stats.observeAll(reader);
    const auto branches = stats.perBranch();
    // Top 20% of sites must carry most of the traffic.
    std::uint64_t top = 0, total = 0;
    for (std::size_t i = 0; i < branches.size(); ++i) {
        if (i < branches.size() / 5)
            top += branches[i].executions;
        total += branches[i].executions;
    }
    EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.5);
}

TEST(Generator, LoopSitesEmitRuns)
{
    // An all-deterministic-loop workload: the trace must consist of
    // taken-runs terminated by single not-taken exits.
    WorkloadSpec spec = smallSpec();
    spec.mix = BehaviorMix{};
    spec.mix.stronglyBiased = 0;
    spec.mix.loop = 1.0;
    spec.mix.globalCorrelated = 0;
    spec.mix.localCorrelated = 0;
    spec.mix.pattern = 0;
    spec.mix.phaseModal = 0;
    spec.mix.weaklyBiased = 0;
    spec.params.loopDeterministicShare = 1.0;
    spec.params.loopTripLo = 4.0;
    spec.params.loopTripHi = 4.0;
    const MemoryTrace trace = generateWorkloadTrace(spec);
    // Every consecutive same-pc run must be 'taken...taken,not-taken'.
    std::size_t i = 0;
    while (i < trace.size()) {
        const std::uint64_t pc = trace[i].pc;
        std::size_t run_length = 0;
        bool saw_exit = false;
        while (i < trace.size() && trace[i].pc == pc) {
            saw_exit = !trace[i].taken;
            ++run_length;
            ++i;
            if (saw_exit)
                break;
        }
        if (i < trace.size() && run_length > 0 && saw_exit) {
            EXPECT_LE(run_length, 4u) << "trip count is 4";
        }
    }
}

} // namespace
} // namespace bpsim
