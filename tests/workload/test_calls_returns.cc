/** @file Tests for opt-in call/return emission in the generator. */

#include <gtest/gtest.h>

#include <vector>

#include "predictors/ras.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
callSpec()
{
    WorkloadSpec spec;
    spec.name = "calls";
    spec.suite = "test";
    spec.staticBranches = 300;
    spec.dynamicBranches = 60'000;
    spec.seed = 17;
    spec.emitCallsAndReturns = true;
    spec.callSiteProbability = 0.15;
    return spec;
}

TEST(CallsReturns, DisabledByDefault)
{
    WorkloadSpec spec = callSpec();
    spec.emitCallsAndReturns = false;
    const MemoryTrace trace = generateWorkloadTrace(spec);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_TRUE(trace[i].isConditional());
}

TEST(CallsReturns, FlagDoesNotPerturbConditionalStream)
{
    // With the flag off, the trace must be identical to the
    // pre-flag behaviour (same seed, same records) — the flag must
    // not consume RNG draws when disabled.
    WorkloadSpec off = callSpec();
    off.emitCallsAndReturns = false;
    const MemoryTrace a = generateWorkloadTrace(off);
    const MemoryTrace b = generateWorkloadTrace(off);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(CallsReturns, EmitsCallsAndReturns)
{
    const MemoryTrace trace = generateWorkloadTrace(callSpec());
    std::uint64_t calls = 0, returns = 0, conditionals = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        switch (trace[i].type) {
          case BranchType::Call: ++calls; break;
          case BranchType::Return: ++returns; break;
          case BranchType::Conditional: ++conditionals; break;
          default: break;
        }
    }
    EXPECT_GT(calls, 1000u);
    EXPECT_GT(conditionals, 40'000u);
    // Returns pair with calls except those cut off by the trace end.
    EXPECT_LE(returns, calls);
    EXPECT_GE(returns + 16, calls);
}

TEST(CallsReturns, CallsAndReturnsNestProperly)
{
    // Walking the trace with an ideal unbounded stack: every return
    // must match the most recent open call (target == call pc + 4).
    const MemoryTrace trace = generateWorkloadTrace(callSpec());
    std::vector<std::uint64_t> stack;
    std::uint64_t matched = 0, mismatched = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &record = trace[i];
        if (record.type == BranchType::Call) {
            stack.push_back(record.pc + 4);
        } else if (record.type == BranchType::Return) {
            ASSERT_FALSE(stack.empty()) << "return without call";
            if (record.target == stack.back())
                ++matched;
            else
                ++mismatched;
            stack.pop_back();
        }
    }
    EXPECT_GT(matched, 0u);
    EXPECT_EQ(mismatched, 0u)
        << "every return must target its matching call site";
}

TEST(CallsReturns, RasPredictsGeneratedReturns)
{
    const MemoryTrace trace = generateWorkloadTrace(callSpec());
    ReturnAddressStack ras(32);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BranchRecord &record = trace[i];
        if (record.type == BranchType::Call)
            ras.pushCall(record.pc);
        else if (record.type == BranchType::Return)
            ras.popReturn(record.target);
    }
    EXPECT_GT(ras.stats().returns, 1000u);
    // Depth is bounded at 8, well under the 32-entry stack: the RAS
    // must predict essentially every return.
    EXPECT_GT(ras.stats().returnAccuracy(), 0.999);
    EXPECT_EQ(ras.stats().overflows, 0u);
}

TEST(CallsReturns, SimulatorIgnoresNonConditionals)
{
    // Accuracy statistics must be computed over conditionals only,
    // so a flag-on trace yields the same branch count as its
    // conditional subset.
    const MemoryTrace trace = generateWorkloadTrace(callSpec());
    std::uint64_t conditionals = 0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        conditionals += trace[i].isConditional();
    EXPECT_LT(conditionals, trace.size());
}

} // namespace
} // namespace bpsim
