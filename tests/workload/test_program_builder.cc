/** @file Tests for synthetic program construction. */

#include <gtest/gtest.h>

#include <set>

#include "workload/program_builder.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.name = "test";
    spec.suite = "test";
    spec.staticBranches = 500;
    spec.dynamicBranches = 10'000;
    spec.seed = 7;
    return spec;
}

TEST(ProgramBuilder, BuildsRequestedSiteCount)
{
    const Program program = buildProgram(smallSpec());
    EXPECT_EQ(program.siteCount(), 500u);
}

TEST(ProgramBuilder, ExactCountForAwkwardSizes)
{
    for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1001ULL}) {
        WorkloadSpec spec = smallSpec();
        spec.staticBranches = n;
        EXPECT_EQ(buildProgram(spec).siteCount(), n) << "n=" << n;
    }
}

TEST(ProgramBuilder, PcsAreUniqueAndAligned)
{
    const Program program = buildProgram(smallSpec());
    std::set<std::uint64_t> pcs;
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites) {
            EXPECT_EQ(site.pc % 4, 0u);
            EXPECT_TRUE(pcs.insert(site.pc).second)
                << "duplicate pc 0x" << std::hex << site.pc;
        }
    }
}

TEST(ProgramBuilder, PcsAreMonotoneWithinCodeRegion)
{
    WorkloadSpec spec = smallSpec();
    const Program program = buildProgram(spec);
    std::uint64_t previous = 0;
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites) {
            EXPECT_GT(site.pc, previous);
            EXPECT_GT(site.pc, spec.codeBase);
            previous = site.pc;
        }
    }
}

TEST(ProgramBuilder, LoopsHaveBackwardTargets)
{
    const Program program = buildProgram(smallSpec());
    int loops = 0;
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites) {
            if (site.isLoop) {
                ++loops;
                EXPECT_LT(site.takenTarget, site.pc);
            } else {
                EXPECT_GT(site.takenTarget, site.pc);
            }
        }
    }
    EXPECT_GT(loops, 0) << "default mix must produce loops";
}

TEST(ProgramBuilder, EverySiteHasBehavior)
{
    const Program program = buildProgram(smallSpec());
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites)
            ASSERT_NE(site.behavior, nullptr);
    }
}

TEST(ProgramBuilder, RoutineSizesAreReasonable)
{
    WorkloadSpec spec = smallSpec();
    spec.staticBranches = 5000;
    const Program program = buildProgram(spec);
    EXPECT_GT(program.routineCount(), 5000u / 30);
    for (std::size_t r = 0; r < program.routineCount(); ++r)
        EXPECT_GE(program.routine(r).sites.size(), 1u);
}

TEST(ProgramBuilder, DeterministicForSameSeed)
{
    const Program a = buildProgram(smallSpec());
    const Program b = buildProgram(smallSpec());
    ASSERT_EQ(a.routineCount(), b.routineCount());
    for (std::size_t r = 0; r < a.routineCount(); ++r) {
        const auto &ra = a.routine(r), &rb = b.routine(r);
        ASSERT_EQ(ra.sites.size(), rb.sites.size());
        for (std::size_t i = 0; i < ra.sites.size(); ++i) {
            EXPECT_EQ(ra.sites[i].pc, rb.sites[i].pc);
            EXPECT_EQ(ra.sites[i].isLoop, rb.sites[i].isLoop);
            EXPECT_EQ(ra.sites[i].behavior->describe(),
                      rb.sites[i].behavior->describe());
        }
    }
}

TEST(ProgramBuilder, DifferentSeedsDiffer)
{
    WorkloadSpec other = smallSpec();
    other.seed = 8;
    const Program a = buildProgram(smallSpec());
    const Program b = buildProgram(other);
    // At least the first site's behaviour or pc should differ.
    bool differs = a.routineCount() != b.routineCount();
    if (!differs) {
        const auto &sa = a.routine(0).sites[0];
        const auto &sb = b.routine(0).sites[0];
        differs = sa.pc != sb.pc ||
                  sa.behavior->describe() != sb.behavior->describe();
    }
    EXPECT_TRUE(differs);
}

TEST(ProgramBuilder, MixIsRespected)
{
    // An all-loop mix must produce only loop sites.
    WorkloadSpec spec = smallSpec();
    spec.mix = BehaviorMix{};
    spec.mix.stronglyBiased = 0;
    spec.mix.loop = 1.0;
    spec.mix.globalCorrelated = 0;
    spec.mix.localCorrelated = 0;
    spec.mix.pattern = 0;
    spec.mix.phaseModal = 0;
    spec.mix.weaklyBiased = 0;
    const Program program = buildProgram(spec);
    for (std::size_t r = 0; r < program.routineCount(); ++r) {
        for (const BranchSite &site : program.routine(r).sites)
            EXPECT_TRUE(site.isLoop);
    }
}

TEST(Program, ResetStateClearsLocalHistory)
{
    Program program = buildProgram(smallSpec());
    program.routine(0).sites[0].localHistory = 0xff;
    program.resetState();
    EXPECT_EQ(program.routine(0).sites[0].localHistory, 0u);
}

TEST(ProgramBuilderDeath, ZeroBranchesIsFatal)
{
    WorkloadSpec spec = smallSpec();
    spec.staticBranches = 0;
    EXPECT_EXIT(buildProgram(spec), ::testing::ExitedWithCode(1),
                "at least one static branch");
}

} // namespace
} // namespace bpsim
