/** @file Tests for the branch behaviour models. */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "workload/behavior.hh"

namespace bpsim
{
namespace
{

BehaviorContext
makeContext(Rng &rng, std::uint64_t global = 0, std::uint64_t local = 0)
{
    BehaviorContext ctx;
    ctx.rng = &rng;
    ctx.globalHistory = global;
    ctx.localHistory = local;
    return ctx;
}

TEST(BiasedBehavior, FrequencyMatchesProbability)
{
    Rng rng(1);
    BiasedBehavior behavior(0.8);
    auto ctx = makeContext(rng);
    int taken = 0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i)
        taken += behavior.nextOutcome(ctx);
    EXPECT_NEAR(static_cast<double>(taken) / n, 0.8, 0.02);
}

TEST(BiasedBehavior, DegenerateProbabilities)
{
    Rng rng(2);
    BiasedBehavior always(1.0), never(0.0);
    auto ctx = makeContext(rng);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always.nextOutcome(ctx));
        EXPECT_FALSE(never.nextOutcome(ctx));
    }
}

TEST(LoopBehavior, DeterministicTripCount)
{
    Rng rng(3);
    LoopBehavior loop(5.0, true);
    auto ctx = makeContext(rng);
    // Each entry: 4 taken iterations then one not-taken exit.
    for (int entry = 0; entry < 10; ++entry) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(loop.nextOutcome(ctx)) << "entry " << entry;
        EXPECT_FALSE(loop.nextOutcome(ctx)) << "entry " << entry;
    }
}

TEST(LoopBehavior, TripOfOneNeverTakes)
{
    Rng rng(4);
    LoopBehavior loop(1.0, true);
    auto ctx = makeContext(rng);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(loop.nextOutcome(ctx));
}

TEST(LoopBehavior, RandomTripsAverageOut)
{
    Rng rng(5);
    LoopBehavior loop(8.0, false);
    auto ctx = makeContext(rng);
    // Count iterations per entry over many entries.
    std::uint64_t iterations = 0, entries = 0;
    for (int i = 0; i < 200'000; ++i) {
        ++iterations;
        if (!loop.nextOutcome(ctx))
            ++entries;
    }
    const double mean_trips =
        static_cast<double>(iterations) / static_cast<double>(entries);
    EXPECT_NEAR(mean_trips, 8.0, 0.5);
}

TEST(LoopBehavior, ResetRearms)
{
    Rng rng(6);
    LoopBehavior loop(3.0, true);
    auto ctx = makeContext(rng);
    EXPECT_TRUE(loop.nextOutcome(ctx));
    loop.reset();
    // After reset the trip count restarts.
    EXPECT_TRUE(loop.nextOutcome(ctx));
    EXPECT_TRUE(loop.nextOutcome(ctx));
    EXPECT_FALSE(loop.nextOutcome(ctx));
}

TEST(PatternBehavior, CyclesExactly)
{
    Rng rng(7);
    PatternBehavior pattern({true, true, false});
    auto ctx = makeContext(rng);
    for (int cycle = 0; cycle < 5; ++cycle) {
        EXPECT_TRUE(pattern.nextOutcome(ctx));
        EXPECT_TRUE(pattern.nextOutcome(ctx));
        EXPECT_FALSE(pattern.nextOutcome(ctx));
    }
}

TEST(PatternBehavior, ResetRestartsCycle)
{
    Rng rng(8);
    PatternBehavior pattern({true, false});
    auto ctx = makeContext(rng);
    pattern.nextOutcome(ctx);
    pattern.reset();
    EXPECT_TRUE(pattern.nextOutcome(ctx));
}

TEST(GlobalCorrelated, DeterministicWithoutNoise)
{
    Rng rng(9);
    GlobalCorrelatedBehavior behavior(4, 0.0, 42);
    auto ctx = makeContext(rng);
    // Same history -> same outcome, every time.
    for (std::uint64_t history = 0; history < 16; ++history) {
        ctx.globalHistory = history;
        const bool first = behavior.nextOutcome(ctx);
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(behavior.nextOutcome(ctx), first)
                << "history " << history;
    }
}

TEST(GlobalCorrelated, FunctionIsNonConstant)
{
    Rng rng(10);
    GlobalCorrelatedBehavior behavior(4, 0.0, 43);
    auto ctx = makeContext(rng);
    bool saw_taken = false, saw_not = false;
    for (std::uint64_t history = 0; history < 16; ++history) {
        ctx.globalHistory = history;
        (behavior.nextOutcome(ctx) ? saw_taken : saw_not) = true;
    }
    EXPECT_TRUE(saw_taken);
    EXPECT_TRUE(saw_not);
}

TEST(GlobalCorrelated, SameSeedSameFunction)
{
    Rng rng(11);
    GlobalCorrelatedBehavior a(5, 0.0, 99), b(5, 0.0, 99);
    auto ctx = makeContext(rng);
    for (std::uint64_t history = 0; history < 32; ++history) {
        ctx.globalHistory = history;
        EXPECT_EQ(a.nextOutcome(ctx), b.nextOutcome(ctx));
    }
}

TEST(GlobalCorrelated, NoiseFlipsOccasionally)
{
    Rng rng(12);
    GlobalCorrelatedBehavior behavior(3, 0.2, 44);
    auto ctx = makeContext(rng);
    ctx.globalHistory = 5;
    const bool base = [&] {
        GlobalCorrelatedBehavior clean(3, 0.0, 44);
        return clean.nextOutcome(ctx);
    }();
    int flips = 0;
    const int n = 10'000;
    for (int i = 0; i < n; ++i)
        flips += behavior.nextOutcome(ctx) != base;
    EXPECT_NEAR(static_cast<double>(flips) / n, 0.2, 0.03);
}

TEST(LocalCorrelated, ReadsLocalNotGlobal)
{
    Rng rng(13);
    LocalCorrelatedBehavior behavior(4, 0.0, 45);
    auto ctx = makeContext(rng);
    ctx.localHistory = 7;
    const bool with_local7 = behavior.nextOutcome(ctx);
    // Changing global history must not change the outcome.
    ctx.globalHistory = ~std::uint64_t{0};
    EXPECT_EQ(behavior.nextOutcome(ctx), with_local7);
}

TEST(PhaseModal, FlipsBiasAcrossPhases)
{
    Rng rng(14);
    PhaseModalBehavior behavior(0.98, 0.02, 500.0);
    auto ctx = makeContext(rng);
    // Long run: overall taken fraction near 50% even though each
    // phase is strongly biased.
    int taken = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        taken += behavior.nextOutcome(ctx);
    const double fraction = static_cast<double>(taken) / n;
    EXPECT_GT(fraction, 0.3);
    EXPECT_LT(fraction, 0.7);

    // Local windows are strongly biased: measure per-100 windows.
    behavior.reset();
    int extreme_windows = 0, windows = 0;
    for (int w = 0; w < 500; ++w) {
        int window_taken = 0;
        for (int i = 0; i < 100; ++i)
            window_taken += behavior.nextOutcome(ctx);
        ++windows;
        extreme_windows += window_taken <= 15 || window_taken >= 85;
    }
    EXPECT_GT(extreme_windows, windows * 3 / 4)
        << "most windows must sit deep in one phase";
}

TEST(PhaseModal, ResetRestartsInPhaseA)
{
    Rng rng(15);
    PhaseModalBehavior behavior(1.0, 0.0, 1'000'000.0);
    auto ctx = makeContext(rng);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(behavior.nextOutcome(ctx));
    behavior.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(behavior.nextOutcome(ctx));
}

TEST(Behaviors, DescribeIsNonEmpty)
{
    Rng rng(16);
    std::vector<BehaviorPtr> behaviors;
    behaviors.push_back(std::make_unique<BiasedBehavior>(0.5));
    behaviors.push_back(std::make_unique<LoopBehavior>(4.0, true));
    behaviors.push_back(
        std::make_unique<PatternBehavior>(std::vector<bool>{true, false}));
    behaviors.push_back(
        std::make_unique<GlobalCorrelatedBehavior>(4, 0.1, 1));
    behaviors.push_back(
        std::make_unique<LocalCorrelatedBehavior>(4, 0.1, 2));
    behaviors.push_back(
        std::make_unique<PhaseModalBehavior>(0.9, 0.1, 100.0));
    for (const auto &behavior : behaviors)
        EXPECT_FALSE(behavior->describe().empty());
}

TEST(BehaviorsDeath, EmptyPatternPanics)
{
    EXPECT_DEATH(PatternBehavior(std::vector<bool>{}), "non-empty");
}

TEST(BehaviorsDeath, BadCorrelationDepthPanics)
{
    EXPECT_DEATH(GlobalCorrelatedBehavior(0, 0.0, 1), "out of range");
    EXPECT_DEATH(GlobalCorrelatedBehavior(17, 0.0, 1), "out of range");
}

} // namespace
} // namespace bpsim
