/** @file Tests for WorkloadSpec text serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workload/generator.hh"
#include "workload/spec_io.hh"

namespace bpsim
{
namespace
{

TEST(SpecIo, ParsesBasicKeys)
{
    std::istringstream in(
        "name = myapp\n"
        "static_branches = 3000\n"
        "dynamic_branches = 123456\n"
        "seed = 0x2a\n"
        "mix.weakly_biased = 0.4\n"
        "params.corr_depth_hi = 12\n");
    const WorkloadSpec spec = parseWorkloadSpec(in);
    EXPECT_EQ(spec.name, "myapp");
    EXPECT_EQ(spec.staticBranches, 3000u);
    EXPECT_EQ(spec.dynamicBranches, 123456u);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_DOUBLE_EQ(spec.mix.weaklyBiased, 0.4);
    EXPECT_EQ(spec.params.corrDepthHi, 12u);
}

TEST(SpecIo, UnsetKeysKeepDefaults)
{
    std::istringstream in("name = x\n");
    const WorkloadSpec spec = parseWorkloadSpec(in);
    const WorkloadSpec defaults;
    EXPECT_EQ(spec.staticBranches, defaults.staticBranches);
    EXPECT_DOUBLE_EQ(spec.zipfExponent, defaults.zipfExponent);
    EXPECT_DOUBLE_EQ(spec.mix.loop, defaults.mix.loop);
}

TEST(SpecIo, CommentsAndBlanksIgnored)
{
    std::istringstream in(
        "# full-line comment\n"
        "\n"
        "   \n"
        "seed = 7   # trailing comment\n");
    EXPECT_EQ(parseWorkloadSpec(in).seed, 7u);
}

TEST(SpecIo, RoundTripThroughText)
{
    WorkloadSpec original;
    original.name = "roundtrip";
    original.suite = "custom";
    original.staticBranches = 777;
    original.dynamicBranches = 98'765;
    original.seed = 0xdeadbeef;
    original.zipfExponent = 1.75;
    original.mix.stronglyBiased = 0.11;
    original.mix.weaklyBiased = 0.33;
    original.params.corrDepthLo = 3;
    original.params.corrDepthHi = 11;
    original.params.phaseLength = 12345.0;

    std::ostringstream out;
    writeWorkloadSpec(out, original);
    std::istringstream in(out.str());
    const WorkloadSpec loaded = parseWorkloadSpec(in);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.suite, original.suite);
    EXPECT_EQ(loaded.staticBranches, original.staticBranches);
    EXPECT_EQ(loaded.dynamicBranches, original.dynamicBranches);
    EXPECT_EQ(loaded.seed, original.seed);
    EXPECT_DOUBLE_EQ(loaded.zipfExponent, original.zipfExponent);
    EXPECT_DOUBLE_EQ(loaded.mix.stronglyBiased,
                     original.mix.stronglyBiased);
    EXPECT_DOUBLE_EQ(loaded.mix.weaklyBiased,
                     original.mix.weaklyBiased);
    EXPECT_EQ(loaded.params.corrDepthLo, original.params.corrDepthLo);
    EXPECT_EQ(loaded.params.corrDepthHi, original.params.corrDepthHi);
    EXPECT_DOUBLE_EQ(loaded.params.phaseLength,
                     original.params.phaseLength);
}

TEST(SpecIo, RoundTripProducesIdenticalTraces)
{
    WorkloadSpec original;
    original.name = "trace-identical";
    original.staticBranches = 300;
    original.dynamicBranches = 20'000;
    original.seed = 99;

    std::ostringstream out;
    writeWorkloadSpec(out, original);
    std::istringstream in(out.str());
    const WorkloadSpec loaded = parseWorkloadSpec(in);

    const MemoryTrace a = generateWorkloadTrace(original);
    const MemoryTrace b = generateWorkloadTrace(loaded);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(SpecIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "spec_io_test.spec";
    WorkloadSpec original;
    original.name = "file-test";
    original.seed = 31337;
    saveWorkloadSpec(path, original);
    const WorkloadSpec loaded = loadWorkloadSpec(path);
    EXPECT_EQ(loaded.name, "file-test");
    EXPECT_EQ(loaded.seed, 31337u);
    std::remove(path.c_str());
}

TEST(SpecIoDeath, UnknownKeyIsFatal)
{
    std::istringstream in("bogus_key = 1\n");
    EXPECT_EXIT(parseWorkloadSpec(in), ::testing::ExitedWithCode(1),
                "unknown spec key");
}

TEST(SpecIoDeath, MissingEqualsIsFatal)
{
    std::istringstream in("name myapp\n");
    EXPECT_EXIT(parseWorkloadSpec(in), ::testing::ExitedWithCode(1),
                "expected 'key = value'");
}

TEST(SpecIoDeath, BadNumberIsFatal)
{
    std::istringstream in("seed = banana\n");
    EXPECT_EXIT(parseWorkloadSpec(in), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(SpecIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadWorkloadSpec("/nonexistent/x.spec"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace bpsim
