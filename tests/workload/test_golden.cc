/**
 * @file
 * Golden regression pins for workload determinism.
 *
 * The entire experimental record (EXPERIMENTS.md) rests on the
 * workloads being bit-reproducible; these tests freeze an FNV-1a
 * hash of the first 100k records of four benchmarks. A change here
 * means every recorded number in EXPERIMENTS.md is stale — either
 * revert the behaviour change or regenerate the document.
 */

#include <gtest/gtest.h>

#include "trace/codec.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

std::uint64_t
hashTrace(const MemoryTrace &trace, std::size_t n)
{
    Fnv1a hash;
    for (std::size_t i = 0; i < std::min(n, trace.size()); ++i) {
        const BranchRecord &record = trace[i];
        std::uint8_t buffer[18];
        for (int b = 0; b < 8; ++b)
            buffer[b] =
                static_cast<std::uint8_t>(record.pc >> (8 * b));
        for (int b = 0; b < 8; ++b)
            buffer[8 + b] =
                static_cast<std::uint8_t>(record.target >> (8 * b));
        buffer[16] = static_cast<std::uint8_t>(record.type);
        buffer[17] = record.taken ? 1 : 0;
        hash.update(buffer, sizeof(buffer));
    }
    return hash.digest();
}

std::uint64_t
benchmarkHash(const std::string &name)
{
    auto spec = findBenchmark(name);
    EXPECT_TRUE(spec.has_value());
    spec->dynamicBranches = 100'000;
    const MemoryTrace trace = generateWorkloadTrace(*spec);
    return hashTrace(trace, 100'000);
}

TEST(GoldenTraces, Gcc)
{
    EXPECT_EQ(benchmarkHash("gcc"), 0xdcd5deb081652d96ULL);
}

TEST(GoldenTraces, Compress)
{
    EXPECT_EQ(benchmarkHash("compress"), 0x8834ea59184a242fULL);
}

TEST(GoldenTraces, Go)
{
    EXPECT_EQ(benchmarkHash("go"), 0xd181c47229f9338aULL);
}

TEST(GoldenTraces, Vortex)
{
    EXPECT_EQ(benchmarkHash("vortex"), 0x188c4a3099709a5fULL);
}

} // namespace
} // namespace bpsim
