/** @file Tests for the built-in benchmark suite (Table 2 mirrors). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/benchmarks.hh"

namespace bpsim
{
namespace
{

TEST(Benchmarks, SuiteSizesMatchPaper)
{
    EXPECT_EQ(specCint95Benchmarks().size(), 6u);
    EXPECT_EQ(ibsBenchmarks().size(), 8u);
    EXPECT_EQ(allBenchmarks().size(), 14u);
}

TEST(Benchmarks, NamesMatchTable2)
{
    const std::set<std::string> expected = {
        "compress", "gcc", "go", "xlisp", "perl", "vortex",
        "groff", "gs", "mpeg_play", "nroff", "real_gcc", "sdet",
        "verilog", "video_play"};
    std::set<std::string> actual;
    for (const auto &spec : allBenchmarks())
        actual.insert(spec.name);
    EXPECT_EQ(actual, expected);
}

TEST(Benchmarks, StaticCountsMatchTable2)
{
    // The paper's Table 2 static conditional branch counts.
    const std::map<std::string, std::uint64_t> expected = {
        {"compress", 482}, {"gcc", 16'035}, {"go", 5'112},
        {"xlisp", 636}, {"perl", 1'974}, {"vortex", 6'599},
        {"groff", 6'333}, {"gs", 12'852}, {"mpeg_play", 5'598},
        {"nroff", 5'249}, {"real_gcc", 17'361}, {"sdet", 5'310},
        {"verilog", 4'636}, {"video_play", 4'606}};
    for (const auto &spec : allBenchmarks()) {
        ASSERT_TRUE(expected.count(spec.name)) << spec.name;
        EXPECT_EQ(spec.staticBranches, expected.at(spec.name))
            << spec.name;
        EXPECT_EQ(paperStaticCount(spec.name), expected.at(spec.name));
    }
}

TEST(Benchmarks, DynamicCountsAreScaledFromTable2)
{
    for (const auto &spec : allBenchmarks()) {
        const std::uint64_t paper = paperDynamicCount(spec.name);
        EXPECT_LE(spec.dynamicBranches, paper / 10) << spec.name;
        EXPECT_LE(spec.dynamicBranches, 2'500'000u) << spec.name;
        EXPECT_GE(spec.dynamicBranches, 400'000u) << spec.name;
    }
}

TEST(Benchmarks, SuitesAreLabelled)
{
    for (const auto &spec : specCint95Benchmarks())
        EXPECT_EQ(spec.suite, "SPEC CINT95") << spec.name;
    for (const auto &spec : ibsBenchmarks())
        EXPECT_EQ(spec.suite, "IBS-Ultrix") << spec.name;
}

TEST(Benchmarks, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &spec : allBenchmarks())
        EXPECT_TRUE(seeds.insert(spec.seed).second)
            << "duplicate seed in " << spec.name;
}

TEST(Benchmarks, FindByName)
{
    const auto gcc = findBenchmark("gcc");
    ASSERT_TRUE(gcc.has_value());
    EXPECT_EQ(gcc->name, "gcc");
    EXPECT_FALSE(findBenchmark("doom").has_value());
}

TEST(Benchmarks, GoIsWeaklyBiasedHeavy)
{
    // Section 4.4: go's WB class dominates. Its weak share must be
    // the largest in the suite.
    const auto go = findBenchmark("go");
    ASSERT_TRUE(go.has_value());
    for (const auto &spec : allBenchmarks()) {
        if (spec.name != "go") {
            EXPECT_GT(go->mix.weaklyBiased, spec.mix.weaklyBiased)
                << spec.name;
        }
    }
}

TEST(Benchmarks, DeepHistoryExceptionsConfigured)
{
    // compress and xlisp carry the deepest correlation structure
    // (the gshare.1PHT exception benchmarks).
    for (const char *name : {"compress", "xlisp"}) {
        const auto spec = findBenchmark(name);
        ASSERT_TRUE(spec.has_value());
        EXPECT_GE(spec->params.corrDepthHi, 12u) << name;
    }
}

TEST(BenchmarksDeath, UnknownPaperCountIsFatal)
{
    EXPECT_EXIT(paperDynamicCount("doom"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

} // namespace
} // namespace bpsim
