/** @file Tests for the BBT1 binary trace format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/binary_io.hh"
#include "trace/memory_trace.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

/** Temp-file path helper that cleans up after the test. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : filePath(::testing::TempDir() + name)
    {
    }

    ~TempFile() { std::remove(filePath.c_str()); }

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

MemoryTrace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    std::uint64_t pc = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord record;
        pc += 4 * (1 + rng.nextBounded(16));
        record.pc = pc;
        record.target = pc + 4 * (rng.nextBounded(64) + 1) -
                        4 * rng.nextBounded(32);
        record.type = static_cast<BranchType>(rng.nextBounded(5));
        record.taken = rng.nextBool(0.6);
        trace.append(record);
    }
    return trace;
}

TEST(BinaryIo, RoundTripSmall)
{
    TempFile file("bbt_small.trace");
    const MemoryTrace original = randomTrace(100, 1);
    auto reader = original.reader();
    EXPECT_EQ(writeBinaryTrace(reader, file.path()), 100u);

    MemoryTrace loaded;
    readBinaryTrace(file.path(), loaded);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(BinaryIo, RoundTripLarge)
{
    TempFile file("bbt_large.trace");
    const MemoryTrace original = randomTrace(200'000, 2);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    MemoryTrace loaded;
    readBinaryTrace(file.path(), loaded);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); i += 997)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(BinaryIo, EmptyTraceRoundTrips)
{
    TempFile file("bbt_empty.trace");
    MemoryTrace empty;
    auto reader = empty.reader();
    EXPECT_EQ(writeBinaryTrace(reader, file.path()), 0u);
    MemoryTrace loaded;
    readBinaryTrace(file.path(), loaded);
    EXPECT_TRUE(loaded.empty());
}

TEST(BinaryIo, CompressionBeatsRawEncoding)
{
    TempFile file("bbt_ratio.trace");
    const MemoryTrace original = randomTrace(50'000, 3);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    std::ifstream in(file.path(), std::ios::ate | std::ios::binary);
    const auto file_size = static_cast<std::size_t>(in.tellg());
    // Raw encoding would be >= 17 bytes/record; the delta codec
    // should stay well under 8.
    EXPECT_LT(file_size, original.size() * 8);
}

TEST(BinaryIo, ReaderRewindReproduces)
{
    TempFile file("bbt_rewind.trace");
    const MemoryTrace original = randomTrace(500, 4);
    auto writer_reader = original.reader();
    writeBinaryTrace(writer_reader, file.path());

    BinaryTraceReader reader(file.path());
    BranchRecord first_pass, second_pass;
    ASSERT_TRUE(reader.next(first_pass));
    reader.rewind();
    ASSERT_TRUE(reader.next(second_pass));
    EXPECT_EQ(first_pass, second_pass);
}

TEST(BinaryIo, SizeIsKnown)
{
    TempFile file("bbt_size.trace");
    const MemoryTrace original = randomTrace(321, 5);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    BinaryTraceReader loaded(file.path());
    ASSERT_TRUE(loaded.size().has_value());
    EXPECT_EQ(*loaded.size(), 321u);
}

TEST(BinaryIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(BinaryTraceReader("/nonexistent/path.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(BinaryIoDeath, BadMagicIsFatal)
{
    TempFile file("bbt_magic.trace");
    std::ofstream out(file.path(), std::ios::binary);
    out << "NOTATRACE_PADDING_PADDING_PADDING";
    out.close();
    EXPECT_EXIT(BinaryTraceReader(file.path()),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(BinaryIoDeath, TruncatedFileIsFatal)
{
    TempFile file("bbt_trunc.trace");
    std::ofstream out(file.path(), std::ios::binary);
    out << "BB";
    out.close();
    EXPECT_EXIT(BinaryTraceReader(file.path()),
                ::testing::ExitedWithCode(1), "too small");
}

TEST(BinaryIoDeath, CorruptPayloadIsFatal)
{
    TempFile file("bbt_corrupt.trace");
    const MemoryTrace original = randomTrace(1000, 6);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());

    // Flip one payload byte; the checksum must catch it.
    std::fstream f(file.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    char byte;
    f.seekg(100);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(100);
    f.write(&byte, 1);
    f.close();

    EXPECT_EXIT(BinaryTraceReader(file.path()),
                ::testing::ExitedWithCode(1), "checksum mismatch");
}

/** Overwrites the low byte of the BBT1 record-count field. The
 *  payload and its checksum stay intact, so only the count/payload
 *  consistency checks can catch the mismatch. */
void
patchCountByte(const std::string &path, std::uint8_t value)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f) << path;
    f.seekp(8);
    const char byte = static_cast<char>(value);
    f.write(&byte, 1);
}

void
drainReader(const std::string &path)
{
    BinaryTraceReader reader(path);
    BranchRecord record;
    while (reader.next(record)) {
    }
}

TEST(BinaryIoDeath, UndercountedHeaderIsTrailingGarbage)
{
    // Count patched 100 -> 50: after the declared records the payload
    // still has bytes left. That is a distinct corruption from a
    // checksum failure and must say so.
    TempFile file("bbt_undercount.trace");
    const MemoryTrace original = randomTrace(100, 7);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    patchCountByte(file.path(), 50);
    EXPECT_EXIT(drainReader(file.path()),
                ::testing::ExitedWithCode(1), "trailing byte");
}

TEST(BinaryIoDeath, OvercountedHeaderEndsEarly)
{
    // Count patched 100 -> 200: the decoder runs off the end of the
    // payload and must name the record where it happened.
    TempFile file("bbt_overcount.trace");
    const MemoryTrace original = randomTrace(100, 8);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    patchCountByte(file.path(), 200);
    EXPECT_EXIT(drainReader(file.path()),
                ::testing::ExitedWithCode(1), "ended early");
}

TEST(TryReadBinaryTrace, SuccessMatchesFatalReader)
{
    TempFile file("bbt_try_ok.trace");
    const MemoryTrace original = randomTrace(300, 9);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());

    MemoryTrace loaded;
    EXPECT_EQ(tryReadBinaryTrace(file.path(), loaded), "");
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TryReadBinaryTrace, ReportsErrorsWithoutTerminating)
{
    MemoryTrace sink;
    EXPECT_NE(tryReadBinaryTrace("/nonexistent/path.trace", sink)
                  .find("cannot open"),
              std::string::npos);

    TempFile corrupt("bbt_try_corrupt.trace");
    const MemoryTrace original = randomTrace(100, 10);
    auto reader = original.reader();
    writeBinaryTrace(reader, corrupt.path());
    {
        std::fstream f(corrupt.path(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(60);
        char byte;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x10);
        f.seekp(60);
        f.write(&byte, 1);
    }
    EXPECT_NE(tryReadBinaryTrace(corrupt.path(), sink)
                  .find("checksum mismatch"),
              std::string::npos);
}

TEST(TryReadBinaryTrace, UndercountReportsTrailingGarbage)
{
    TempFile file("bbt_try_undercount.trace");
    const MemoryTrace original = randomTrace(100, 11);
    auto reader = original.reader();
    writeBinaryTrace(reader, file.path());
    {
        std::fstream f(file.path(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(8);
        const char byte = 50;
        f.write(&byte, 1);
    }
    MemoryTrace sink;
    EXPECT_NE(tryReadBinaryTrace(file.path(), sink)
                  .find("trailing byte"),
              std::string::npos);
}

} // namespace
} // namespace bpsim
