/** @file Tests for the text trace format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/memory_trace.hh"
#include "trace/text_io.hh"

namespace bpsim
{
namespace
{

class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : filePath(::testing::TempDir() + name)
    {
    }

    ~TempFile() { std::remove(filePath.c_str()); }

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

TEST(TextIo, RoundTrip)
{
    TempFile file("text_rt.trace");
    MemoryTrace original;
    for (int i = 0; i < 50; ++i) {
        BranchRecord record;
        record.pc = 0x400000 + 4 * i;
        record.target = record.pc + 32;
        record.type = static_cast<BranchType>(i % 5);
        record.taken = i % 3 == 0;
        original.append(record);
    }
    {
        TextTraceWriter writer(file.path());
        for (std::size_t i = 0; i < original.size(); ++i)
            writer.append(original[i]);
        writer.finish();
    }
    TextTraceReader reader(file.path());
    BranchRecord record;
    std::size_t i = 0;
    while (reader.next(record)) {
        ASSERT_LT(i, original.size());
        EXPECT_EQ(record, original[i]) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, original.size());
}

TEST(TextIo, SkipsCommentsAndBlanks)
{
    TempFile file("text_comments.trace");
    {
        std::ofstream out(file.path());
        out << "# header comment\n\n"
            << "0x1000 0x1020 cond T\n"
            << "   \n"
            << "0x1004 0x1030 cond N # trailing comment\n";
    }
    TextTraceReader reader(file.path());
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
    EXPECT_TRUE(record.taken);
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1004u);
    EXPECT_FALSE(record.taken);
    EXPECT_FALSE(reader.next(record));
}

TEST(TextIo, RewindRestarts)
{
    TempFile file("text_rewind.trace");
    {
        std::ofstream out(file.path());
        out << "0x1000 0x1020 cond T\n";
    }
    TextTraceReader reader(file.path());
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    ASSERT_FALSE(reader.next(record));
    reader.rewind();
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
}

TEST(TextIoDeath, MalformedLineIsFatal)
{
    TempFile file("text_bad.trace");
    {
        std::ofstream out(file.path());
        out << "0x1000 0x1020\n";
    }
    TextTraceReader reader(file.path());
    BranchRecord record;
    EXPECT_EXIT(reader.next(record), ::testing::ExitedWithCode(1),
                "malformed record");
}

TEST(TextIoDeath, BadOutcomeIsFatal)
{
    TempFile file("text_bad_outcome.trace");
    {
        std::ofstream out(file.path());
        out << "0x1000 0x1020 cond X\n";
    }
    TextTraceReader reader(file.path());
    BranchRecord record;
    EXPECT_EXIT(reader.next(record), ::testing::ExitedWithCode(1),
                "bad outcome");
}

TEST(TextIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TextTraceReader("/nonexistent/file.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace bpsim
