/** @file Tests for the in-memory trace container and its reader. */

#include <gtest/gtest.h>

#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
makeRecord(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 16;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(MemoryTrace, StartsEmpty)
{
    MemoryTrace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.size(), 0u);
}

TEST(MemoryTrace, AppendAndIndex)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x1000, true));
    trace.append(makeRecord(0x2000, false));
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].pc, 0x1000u);
    EXPECT_TRUE(trace[0].taken);
    EXPECT_EQ(trace[1].pc, 0x2000u);
    EXPECT_FALSE(trace[1].taken);
}

TEST(MemoryTrace, ReaderDrainsInOrder)
{
    MemoryTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.append(makeRecord(0x1000 + 4 * i, i % 2 == 0));
    auto reader = trace.reader();
    BranchRecord record;
    int count = 0;
    while (reader.next(record)) {
        EXPECT_EQ(record.pc, 0x1000u + 4 * count);
        ++count;
    }
    EXPECT_EQ(count, 10);
    EXPECT_FALSE(reader.next(record));
}

TEST(MemoryTrace, ReaderRewinds)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x1000, true));
    auto reader = trace.reader();
    BranchRecord record;
    ASSERT_TRUE(reader.next(record));
    ASSERT_FALSE(reader.next(record));
    reader.rewind();
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record.pc, 0x1000u);
}

TEST(MemoryTrace, ReaderReportsSize)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x1000, true));
    trace.append(makeRecord(0x1004, true));
    auto reader = trace.reader();
    ASSERT_TRUE(reader.size().has_value());
    EXPECT_EQ(*reader.size(), 2u);
}

TEST(MemoryTrace, ClearEmpties)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x1000, true));
    trace.clear();
    EXPECT_TRUE(trace.empty());
}

TEST(MemoryTrace, MultipleIndependentReaders)
{
    MemoryTrace trace;
    for (int i = 0; i < 5; ++i)
        trace.append(makeRecord(0x1000 + 4 * i, true));
    auto r1 = trace.reader();
    auto r2 = trace.reader();
    BranchRecord a, b;
    ASSERT_TRUE(r1.next(a));
    ASSERT_TRUE(r1.next(a));
    ASSERT_TRUE(r2.next(b));
    EXPECT_EQ(b.pc, 0x1000u);
    EXPECT_EQ(a.pc, 0x1004u);
}

TEST(BranchRecord, TypeNamesRoundTrip)
{
    for (BranchType type :
         {BranchType::Conditional, BranchType::Unconditional,
          BranchType::Call, BranchType::Return,
          BranchType::IndirectJump}) {
        EXPECT_EQ(branchTypeFromName(branchTypeName(type)), type);
    }
}

TEST(BranchRecord, IsConditional)
{
    BranchRecord record;
    record.type = BranchType::Conditional;
    EXPECT_TRUE(record.isConditional());
    record.type = BranchType::Call;
    EXPECT_FALSE(record.isConditional());
}

TEST(BranchRecordDeath, UnknownTypeNameIsFatal)
{
    EXPECT_EXIT(branchTypeFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown branch type");
}

} // namespace
} // namespace bpsim
