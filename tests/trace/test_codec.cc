/** @file Tests for varint / zigzag / checksum primitives. */

#include <gtest/gtest.h>

#include "trace/codec.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

TEST(Zigzag, KnownValues)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    EXPECT_EQ(zigzagEncode(2), 4u);
}

TEST(Zigzag, RoundTripExtremes)
{
    for (std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                           std::int64_t{-1},
                           std::numeric_limits<std::int64_t>::max(),
                           std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(Zigzag, RoundTripRandom)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(rng.next64());
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(Zigzag, SmallMagnitudesStaySmall)
{
    for (std::int64_t v = -64; v <= 63; ++v)
        EXPECT_LT(zigzagEncode(v), 128u);
}

TEST(Varint, SingleByteValues)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 0);
    putVarint(buf, 1);
    putVarint(buf, 127);
    EXPECT_EQ(buf.size(), 3u);
}

TEST(Varint, MultiByteBoundaries)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 128);
    EXPECT_EQ(buf.size(), 2u);
    buf.clear();
    putVarint(buf, ~std::uint64_t{0});
    EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, RoundTripSweep)
{
    std::vector<std::uint64_t> values;
    for (unsigned shift = 0; shift < 64; ++shift) {
        values.push_back(std::uint64_t{1} << shift);
        values.push_back((std::uint64_t{1} << shift) - 1);
        values.push_back((std::uint64_t{1} << shift) + 1);
    }
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        values.push_back(rng.next64());

    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        putVarint(buf, v);

    std::size_t offset = 0;
    for (std::uint64_t expected : values) {
        std::uint64_t decoded = 0;
        ASSERT_TRUE(getVarint(buf.data(), buf.size(), offset, decoded));
        EXPECT_EQ(decoded, expected);
    }
    EXPECT_EQ(offset, buf.size());
}

TEST(Varint, TruncatedBufferFails)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, 1'000'000);
    std::size_t offset = 0;
    std::uint64_t value = 0;
    EXPECT_FALSE(getVarint(buf.data(), buf.size() - 1, offset, value));
}

TEST(Varint, EmptyBufferFails)
{
    std::size_t offset = 0;
    std::uint64_t value = 0;
    EXPECT_FALSE(getVarint(nullptr, 0, offset, value));
}

TEST(Fnv1a, EmptyDigestIsOffsetBasis)
{
    Fnv1a hash;
    EXPECT_EQ(hash.digest(), 0xcbf29ce484222325ULL);
}

TEST(Fnv1a, KnownVector)
{
    // FNV-1a 64 of "a" is a published test vector.
    Fnv1a hash;
    const std::uint8_t a = 'a';
    hash.update(&a, 1);
    EXPECT_EQ(hash.digest(), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, IncrementalMatchesOneShot)
{
    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
    Fnv1a whole, parts;
    whole.update(data, sizeof(data));
    parts.update(data, 3);
    parts.update(data + 3, 5);
    EXPECT_EQ(whole.digest(), parts.digest());
}

TEST(Fnv1a, SensitiveToEveryByte)
{
    const std::uint8_t a[] = {1, 2, 3, 4};
    const std::uint8_t b[] = {1, 2, 3, 5};
    Fnv1a ha, hb;
    ha.update(a, 4);
    hb.update(b, 4);
    EXPECT_NE(ha.digest(), hb.digest());
}

} // namespace
} // namespace bpsim
