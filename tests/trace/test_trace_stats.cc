/** @file Tests for trace statistics (the Table 2 columns). */

#include <gtest/gtest.h>

#include "trace/memory_trace.hh"
#include "trace/trace_stats.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 16;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(TraceStats, EmptyTrace)
{
    TraceStats stats;
    EXPECT_EQ(stats.staticConditional(), 0u);
    EXPECT_EQ(stats.dynamicConditional(), 0u);
    EXPECT_EQ(stats.takenFraction(), 0.0);
    EXPECT_EQ(stats.stronglyBiasedDynamicFraction(), 0.0);
}

TEST(TraceStats, CountsStaticAndDynamic)
{
    TraceStats stats;
    stats.observe(cond(0x1000, true));
    stats.observe(cond(0x1000, true));
    stats.observe(cond(0x2000, false));
    EXPECT_EQ(stats.staticConditional(), 2u);
    EXPECT_EQ(stats.dynamicConditional(), 3u);
    EXPECT_NEAR(stats.takenFraction(), 2.0 / 3.0, 1e-12);
}

TEST(TraceStats, IgnoresNonConditional)
{
    TraceStats stats;
    BranchRecord call = cond(0x1000, true);
    call.type = BranchType::Call;
    stats.observe(call);
    EXPECT_EQ(stats.staticConditional(), 0u);
    EXPECT_EQ(stats.dynamicConditional(), 0u);
    EXPECT_EQ(stats.dynamicOther(), 1u);
}

TEST(TraceStats, StronglyBiasedFraction)
{
    TraceStats stats;
    // Branch A: 10/10 taken (strongly biased).
    for (int i = 0; i < 10; ++i)
        stats.observe(cond(0x1000, true));
    // Branch B: 5/10 taken (weak).
    for (int i = 0; i < 10; ++i)
        stats.observe(cond(0x2000, i < 5));
    EXPECT_NEAR(stats.stronglyBiasedDynamicFraction(0.9), 0.5, 1e-12);
}

TEST(TraceStats, ThresholdBoundaryIsInclusive)
{
    TraceStats stats;
    // Exactly 90% taken: classified strongly biased at 0.9.
    for (int i = 0; i < 10; ++i)
        stats.observe(cond(0x1000, i < 9));
    EXPECT_NEAR(stats.stronglyBiasedDynamicFraction(0.9), 1.0, 1e-12);
    // At a stricter threshold it no longer qualifies.
    EXPECT_NEAR(stats.stronglyBiasedDynamicFraction(0.95), 0.0, 1e-12);
}

TEST(TraceStats, NotTakenBiasCountsAsStrong)
{
    TraceStats stats;
    for (int i = 0; i < 20; ++i)
        stats.observe(cond(0x1000, false));
    EXPECT_NEAR(stats.stronglyBiasedDynamicFraction(0.9), 1.0, 1e-12);
}

TEST(TraceStats, PerBranchSortedByExecutions)
{
    TraceStats stats;
    for (int i = 0; i < 3; ++i)
        stats.observe(cond(0x1000, true));
    for (int i = 0; i < 7; ++i)
        stats.observe(cond(0x2000, false));
    const auto branches = stats.perBranch();
    ASSERT_EQ(branches.size(), 2u);
    EXPECT_EQ(branches[0].pc, 0x2000u);
    EXPECT_EQ(branches[0].executions, 7u);
    EXPECT_EQ(branches[1].pc, 0x1000u);
    EXPECT_EQ(branches[1].takenCount, 3u);
}

TEST(TraceStats, ObserveAllDrainsReader)
{
    MemoryTrace trace;
    trace.append(cond(0x1000, true));
    trace.append(cond(0x1004, false));
    TraceStats stats;
    auto reader = trace.reader();
    stats.observeAll(reader);
    EXPECT_EQ(stats.dynamicConditional(), 2u);
}

TEST(StaticBranchStats, TakenFraction)
{
    StaticBranchStats branch;
    branch.executions = 4;
    branch.takenCount = 1;
    EXPECT_DOUBLE_EQ(branch.takenFraction(), 0.25);
    EXPECT_FALSE(branch.isStronglyBiased(0.9));
    branch.takenCount = 0;
    EXPECT_TRUE(branch.isStronglyBiased(0.9));
}

} // namespace
} // namespace bpsim
