/** @file Tests for the read-only mmap file wrapper. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "trace/mmap_file.hh"

namespace bpsim
{
namespace
{

class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : filePath(::testing::TempDir() + name)
    {
    }

    ~TempFile() { std::remove(filePath.c_str()); }

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
};

TEST(MmapFile, MissingFileFailsWithoutTerminating)
{
    std::string error;
    const auto file = MmapFile::open("/nonexistent/file.pbt1", error);
    EXPECT_EQ(file, nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(MmapFile, ExposesWholeFileContents)
{
    TempFile temp("mmap_contents.bin");
    const std::string payload = "eight by8 aligned payload bytes!";
    {
        std::ofstream out(temp.path(), std::ios::binary);
        out << payload;
    }

    std::string error;
    const auto file = MmapFile::open(temp.path(), error);
    ASSERT_NE(file, nullptr) << error;
    ASSERT_EQ(file->size(), payload.size());
    EXPECT_EQ(std::memcmp(file->data(), payload.data(), payload.size()),
              0);
    // The payload pointer must be 8-byte aligned whichever path
    // (mmap or heap fallback) served it — PBT1 views depend on it.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(file->data()) % 8, 0u);
}

TEST(MmapFile, EmptyFileIsValidAndEmpty)
{
    TempFile temp("mmap_empty.bin");
    { std::ofstream out(temp.path(), std::ios::binary); }

    std::string error;
    const auto file = MmapFile::open(temp.path(), error);
    ASSERT_NE(file, nullptr) << error;
    EXPECT_EQ(file->size(), 0u);
}

TEST(MmapFile, SharedPtrKeepsContentsAliveAfterScopeExit)
{
    TempFile temp("mmap_alive.bin");
    {
        std::ofstream out(temp.path(), std::ios::binary);
        out << "persistent";
    }

    std::shared_ptr<const MmapFile> kept;
    {
        std::string error;
        kept = MmapFile::open(temp.path(), error);
        ASSERT_NE(kept, nullptr) << error;
    }
    EXPECT_EQ(std::memcmp(kept->data(), "persistent", 10), 0);
}

} // namespace
} // namespace bpsim
