/** @file Tests for the SoA packed trace. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "trace/memory_trace.hh"
#include "trace/packed_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
makeRecord(std::uint64_t pc, bool taken,
           BranchType type = BranchType::Conditional)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 16;
    record.type = type;
    record.taken = taken;
    return record;
}

TEST(PackedTrace, EmptyTracePacksEmpty)
{
    MemoryTrace trace;
    const PackedTrace packed(trace);
    EXPECT_EQ(packed.size(), 0u);
    EXPECT_EQ(packed.wordCount(), 0u);
    EXPECT_EQ(packed.takenCount(), 0u);
}

TEST(PackedTrace, KeepsOnlyConditionals)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x1000, true));
    trace.append(makeRecord(0x2000, true, BranchType::Unconditional));
    trace.append(makeRecord(0x3000, false));
    trace.append(makeRecord(0x4000, true, BranchType::Call));
    trace.append(makeRecord(0x5000, true, BranchType::Return));
    trace.append(makeRecord(0x6000, true));

    const PackedTrace packed(trace);
    ASSERT_EQ(packed.size(), 3u);
    EXPECT_EQ(packed.pc(0), 0x1000u);
    EXPECT_EQ(packed.pc(1), 0x3000u);
    EXPECT_EQ(packed.pc(2), 0x6000u);
    EXPECT_TRUE(packed.taken(0));
    EXPECT_FALSE(packed.taken(1));
    EXPECT_TRUE(packed.taken(2));
    EXPECT_EQ(packed.takenCount(), 2u);
}

TEST(PackedTrace, BitmapRoundTripsAcrossWordBoundaries)
{
    // 150 conditionals spans three 64-bit bitmap words; an
    // alternating pattern catches any bit-order mistake.
    MemoryTrace trace;
    const std::size_t count = 150;
    for (std::size_t i = 0; i < count; ++i)
        trace.append(makeRecord(0x1000 + 4 * i, i % 2 == 0));

    const PackedTrace packed(trace);
    ASSERT_EQ(packed.size(), count);
    EXPECT_EQ(packed.wordCount(), 3u);
    std::uint64_t taken = 0;
    for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(packed.taken(i), i % 2 == 0) << "bit " << i;
        EXPECT_EQ(packed.pc(i), 0x1000 + 4 * i);
        taken += packed.taken(i) ? 1 : 0;
    }
    EXPECT_EQ(packed.takenCount(), taken);
}

TEST(PackedTrace, TakenWordsMatchPerBitView)
{
    MemoryTrace trace;
    for (std::size_t i = 0; i < 100; ++i)
        trace.append(makeRecord(0x1000 + 4 * i, (i * 7) % 3 == 0));

    const PackedTrace packed(trace);
    ASSERT_EQ(packed.wordCount(), 2u);
    for (std::size_t i = 0; i < packed.size(); ++i) {
        const std::uint64_t word =
            packed.takenWord(i / PackedTrace::kWordBits);
        const bool bit = (word >> (i % PackedTrace::kWordBits)) & 1;
        EXPECT_EQ(bit, packed.taken(i)) << "bit " << i;
    }
    // Bits beyond size() in the last word stay zero (the packer never
    // sets them), so popcount-based takenCount() is exact.
    const std::uint64_t last = packed.takenWord(1);
    for (unsigned bit = 100 % 64; bit < 64; ++bit)
        EXPECT_EQ((last >> bit) & 1, 0u) << "padding bit " << bit;
}

TEST(PackedTrace, PcDataIsContiguous)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x10, true));
    trace.append(makeRecord(0x20, false));
    const PackedTrace packed(trace);
    const std::uint64_t *pcs = packed.pcData();
    ASSERT_NE(pcs, nullptr);
    EXPECT_EQ(pcs[0], 0x10u);
    EXPECT_EQ(pcs[1], 0x20u);
}

TEST(PackedTrace, AllNonConditionalPacksEmpty)
{
    MemoryTrace trace;
    trace.append(makeRecord(0x10, true, BranchType::Unconditional));
    trace.append(makeRecord(0x20, true, BranchType::IndirectJump));
    const PackedTrace packed(trace);
    EXPECT_EQ(packed.size(), 0u);
    EXPECT_EQ(packed.wordCount(), 0u);
}

TEST(PackedTrace, OwnedArraysAreCacheLineAligned)
{
    // The vectorized replay kernels stream both arrays; the aligned
    // allocator must hand them out on kTraceArrayAlign boundaries.
    MemoryTrace trace;
    for (std::size_t i = 0; i < 150; ++i)
        trace.append(makeRecord(0x1000 + 4 * i, i % 2 == 0));
    const PackedTrace packed(trace);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed.pcData()) %
                  kTraceArrayAlign,
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed.wordData()) %
                  kTraceArrayAlign,
              0u);

    const PackedTrace adopted(TraceWordVector{0x10, 0x20, 0x30},
                              TraceWordVector{0b101}, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(adopted.pcData()) %
                  kTraceArrayAlign,
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(adopted.wordData()) %
                  kTraceArrayAlign,
              0u);
}

TEST(PackedTrace, AdoptedVectorsBehaveLikePacked)
{
    TraceWordVector pcs = {0x10, 0x20, 0x30};
    TraceWordVector words = {0b101};
    const PackedTrace packed(std::move(pcs), std::move(words), 3);
    ASSERT_EQ(packed.size(), 3u);
    EXPECT_FALSE(packed.isView());
    EXPECT_EQ(packed.pc(1), 0x20u);
    EXPECT_TRUE(packed.taken(0));
    EXPECT_FALSE(packed.taken(1));
    EXPECT_TRUE(packed.taken(2));
    EXPECT_EQ(packed.takenCount(), 2u);
}

TEST(PackedTrace, ViewSharesExternalStorage)
{
    // The view ctor's contract: pointers stay valid exactly as long
    // as the storage handle lives. Model the mmap case with a
    // heap-allocated arena.
    auto arena = std::make_shared<std::vector<std::uint64_t>>(
        std::vector<std::uint64_t>{0x100, 0x200, 0b10});
    const std::uint64_t *pcs = arena->data();
    const std::uint64_t *words = arena->data() + 2;

    PackedTrace view(pcs, words, 2, arena);
    arena.reset(); // the view must keep the arena alive on its own
    ASSERT_EQ(view.size(), 2u);
    EXPECT_TRUE(view.isView());
    EXPECT_EQ(view.pc(0), 0x100u);
    EXPECT_EQ(view.pc(1), 0x200u);
    EXPECT_FALSE(view.taken(0));
    EXPECT_TRUE(view.taken(1));
    EXPECT_EQ(view.pcData(), pcs);
    EXPECT_EQ(view.wordData(), words);
}

TEST(PackedTrace, MoveKeepsSpansValid)
{
    MemoryTrace trace;
    for (std::size_t i = 0; i < 10; ++i)
        trace.append(makeRecord(0x1000 + 8 * i, i % 2 == 0));
    PackedTrace packed(trace);
    const std::uint64_t *pcs_before = packed.pcData();

    const PackedTrace moved = std::move(packed);
    EXPECT_EQ(moved.pcData(), pcs_before);
    ASSERT_EQ(moved.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(moved.pc(i), 0x1000 + 8 * i);
        EXPECT_EQ(moved.taken(i), i % 2 == 0);
    }
}

TEST(PackedTraceDeath, AdoptedSizeMismatchPanics)
{
    TraceWordVector pcs = {0x10, 0x20};
    TraceWordVector words = {};
    EXPECT_DEATH(PackedTrace(std::move(pcs), std::move(words), 2),
                 "do not fit");
}

} // namespace
} // namespace bpsim
