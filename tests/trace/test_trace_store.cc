/** @file Tests for the persistent trace store and PBT1 format. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "trace/codec.hh"
#include "trace/memory_trace.hh"
#include "trace/packed_trace.hh"
#include "trace/trace_store.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

/** A per-test store directory that cleans up after itself. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &name)
        : dirPath(::testing::TempDir() + name)
    {
        std::filesystem::remove_all(dirPath);
    }

    ~TempStoreDir() { std::filesystem::remove_all(dirPath); }

    const std::string &path() const { return dirPath; }

  private:
    std::string dirPath;
};

MemoryTrace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    std::uint64_t pc = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord record;
        pc += 4 * (1 + rng.nextBounded(16));
        record.pc = pc;
        record.target = pc + 64;
        record.type = static_cast<BranchType>(rng.nextBounded(5));
        record.taken = rng.nextBool(0.6);
        trace.append(record);
    }
    return trace;
}

void
xorByteAt(const std::string &path, std::size_t offset,
          std::uint8_t mask)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f) << path;
    char byte;
    f.seekg(static_cast<std::streamoff>(offset));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ mask);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

void
expectSamePacked(const PackedTrace &a, const PackedTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.wordCount(), b.wordCount());
    EXPECT_EQ(a.takenCount(), b.takenCount());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.pc(i), b.pc(i)) << "pc " << i;
        ASSERT_EQ(a.taken(i), b.taken(i)) << "bit " << i;
    }
}

constexpr std::uint64_t kFp = 0x1122334455667788ull;

TEST(TraceStore, BbtRoundTrip)
{
    TempStoreDir dir("store_bbt_rt");
    TraceStore store(dir.path());
    const MemoryTrace original = randomTrace(500, 1);

    std::string why;
    ASSERT_TRUE(store.storeTrace("gcc", kFp, original, why)) << why;

    MemoryTrace loaded;
    EXPECT_EQ(store.loadTrace("gcc", kFp, 500, loaded, why),
              StoreStatus::Loaded)
        << why;
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        ASSERT_EQ(loaded[i], original[i]) << "record " << i;
}

TEST(TraceStore, ColdMissIsMissingNotInvalid)
{
    TempStoreDir dir("store_cold");
    TraceStore store(dir.path());
    MemoryTrace out;
    std::string why;
    EXPECT_EQ(store.loadTrace("gcc", kFp, 100, out, why),
              StoreStatus::Missing);
    PackedTrace packed;
    EXPECT_EQ(store.loadPacked("gcc", kFp, packed, why),
              StoreStatus::Missing);
}

TEST(TraceStore, StaleFingerprintIsADifferentFile)
{
    // The fingerprint is part of the file stem, so a workload change
    // looks like a plain cold miss — the old file is simply ignored.
    TempStoreDir dir("store_stale");
    TraceStore store(dir.path());
    const MemoryTrace original = randomTrace(100, 2);
    std::string why;
    ASSERT_TRUE(store.storeTrace("gcc", kFp, original, why)) << why;

    MemoryTrace out;
    EXPECT_EQ(store.loadTrace("gcc", kFp + 1, 100, out, why),
              StoreStatus::Missing);
}

TEST(TraceStore, WrongRecordCountIsInvalid)
{
    TempStoreDir dir("store_count");
    TraceStore store(dir.path());
    const MemoryTrace original = randomTrace(100, 3);
    std::string why;
    ASSERT_TRUE(store.storeTrace("gcc", kFp, original, why)) << why;

    MemoryTrace out;
    EXPECT_EQ(store.loadTrace("gcc", kFp, 101, out, why),
              StoreStatus::Invalid);
    EXPECT_NE(why.find("expected"), std::string::npos) << why;
}

TEST(TraceStore, TruncatedBbtIsInvalid)
{
    TempStoreDir dir("store_bbt_trunc");
    TraceStore store(dir.path());
    const MemoryTrace original = randomTrace(200, 4);
    std::string why;
    ASSERT_TRUE(store.storeTrace("gcc", kFp, original, why)) << why;

    const std::string path = store.pathFor("gcc", kFp, ".bbt1");
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 5);

    MemoryTrace out;
    EXPECT_EQ(store.loadTrace("gcc", kFp, 200, out, why),
              StoreStatus::Invalid);
    EXPECT_TRUE(out.empty());
}

TEST(TraceStore, FlippedBbtPayloadBitIsInvalid)
{
    TempStoreDir dir("store_bbt_flip");
    TraceStore store(dir.path());
    const MemoryTrace original = randomTrace(200, 5);
    std::string why;
    ASSERT_TRUE(store.storeTrace("gcc", kFp, original, why)) << why;

    xorByteAt(store.pathFor("gcc", kFp, ".bbt1"), 40, 0x08);

    MemoryTrace out;
    EXPECT_EQ(store.loadTrace("gcc", kFp, 200, out, why),
              StoreStatus::Invalid);
    EXPECT_NE(why.find("checksum mismatch"), std::string::npos) << why;
}

TEST(TraceStore, PackedRoundTripBitIdentical)
{
    TempStoreDir dir("store_pbt_rt");
    TraceStore store(dir.path());
    // 150 conditionals: the bitmap has a partial final word, so the
    // padding rules are exercised too.
    MemoryTrace trace;
    for (std::size_t i = 0; i < 150; ++i) {
        BranchRecord record;
        record.pc = 0x1000 + 4 * i;
        record.target = record.pc + 16;
        record.type = BranchType::Conditional;
        record.taken = (i * 5) % 3 == 0;
        trace.append(record);
    }
    const PackedTrace packed(trace);

    std::string why;
    ASSERT_TRUE(store.storePacked("gcc", kFp, packed, why)) << why;

    PackedTrace loaded;
    ASSERT_EQ(store.loadPacked("gcc", kFp, loaded, why),
              StoreStatus::Loaded)
        << why;
    expectSamePacked(packed, loaded);
}

TEST(TraceStore, LoadedViewArraysAreCacheLineAligned)
{
    // 150 records is not a multiple of 8, so without the v2 bitmap
    // padding the mmap'd bitmap would land on a 64+8*150 = 1264 byte
    // offset — misaligned. The loaded trace must be a zero-copy view
    // with both arrays on kTraceArrayAlign boundaries.
    TempStoreDir dir("store_pbt_align");
    TraceStore store(dir.path());
    MemoryTrace trace;
    for (std::size_t i = 0; i < 150; ++i) {
        BranchRecord record;
        record.pc = 0x2000 + 4 * i;
        record.target = record.pc + 16;
        record.type = BranchType::Conditional;
        record.taken = (i * 7) % 3 == 0;
        trace.append(record);
    }
    const PackedTrace packed(trace);
    std::string why;
    ASSERT_TRUE(store.storePacked("gcc", kFp, packed, why)) << why;

    PackedTrace loaded;
    ASSERT_EQ(store.loadPacked("gcc", kFp, loaded, why),
              StoreStatus::Loaded)
        << why;
    EXPECT_TRUE(loaded.isView());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(loaded.pcData()) %
                  kTraceArrayAlign,
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(loaded.wordData()) %
                  kTraceArrayAlign,
              0u);
    expectSamePacked(packed, loaded);
}

TEST(TraceStore, EmptyPackedRoundTrips)
{
    TempStoreDir dir("store_pbt_empty");
    TraceStore store(dir.path());
    const PackedTrace empty{MemoryTrace{}};
    std::string why;
    ASSERT_TRUE(store.storePacked("gcc", kFp, empty, why)) << why;
    PackedTrace loaded;
    ASSERT_EQ(store.loadPacked("gcc", kFp, loaded, why),
              StoreStatus::Loaded)
        << why;
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.takenCount(), 0u);
}

/** Writes a valid PBT1 file, corrupts it with @p corrupt, and expects
 *  loadPacked to reject it with @p expect in the reason. */
void
expectPackedInvalid(const std::string &dirName,
                    void (*corrupt)(const std::string &path),
                    const std::string &expect)
{
    TempStoreDir dir(dirName);
    TraceStore store(dir.path());
    const MemoryTrace trace = randomTrace(100, 6);
    const PackedTrace packed(trace);
    std::string why;
    ASSERT_TRUE(store.storePacked("gcc", kFp, packed, why)) << why;

    corrupt(store.pathFor("gcc", kFp, ".pbt1"));

    PackedTrace loaded;
    EXPECT_EQ(store.loadPacked("gcc", kFp, loaded, why),
              StoreStatus::Invalid);
    EXPECT_NE(why.find(expect), std::string::npos) << why;
}

TEST(TraceStore, TruncatedPackedHeaderIsInvalid)
{
    expectPackedInvalid(
        "store_pbt_tiny",
        [](const std::string &path) {
            std::filesystem::resize_file(path, 40);
        },
        "too small");
}

TEST(TraceStore, TruncatedPackedPayloadIsInvalid)
{
    expectPackedInvalid(
        "store_pbt_trunc",
        [](const std::string &path) {
            const auto size = std::filesystem::file_size(path);
            std::filesystem::resize_file(path, size - 8);
        },
        "bytes");
}

TEST(TraceStore, FlippedPackedPayloadBitIsInvalid)
{
    expectPackedInvalid(
        "store_pbt_flip",
        [](const std::string &path) { xorByteAt(path, 100, 0x01); },
        "checksum mismatch");
}

TEST(TraceStore, WrongPackedVersionIsInvalid)
{
    expectPackedInvalid(
        "store_pbt_ver",
        [](const std::string &path) { xorByteAt(path, 4, 0x02); },
        "unsupported PBT1 version");
}

TEST(TraceStore, BadPackedMagicIsInvalid)
{
    expectPackedInvalid(
        "store_pbt_magic",
        [](const std::string &path) { xorByteAt(path, 0, 0x20); },
        "bad magic");
}

TEST(TraceStore, PatchedPackedCountIsInvalid)
{
    // A count field that disagrees with the file size must be caught
    // before the payload is trusted (the checksum can't help: it is
    // computed over whatever range the count implies). 0x80 moves the
    // count far enough that the bitmap's aligned offset shifts too —
    // a one-off patch could land inside the same alignment slack and
    // only fail the checksum instead.
    expectPackedInvalid(
        "store_pbt_count",
        [](const std::string &path) { xorByteAt(path, 8, 0x80); },
        "records need");
}

TEST(TraceStore, PatchedPackedFingerprintIsInvalid)
{
    // A renamed or hand-copied file whose embedded fingerprint
    // disagrees with the requested key is stale, not corrupt — but
    // must still be rejected.
    expectPackedInvalid(
        "store_pbt_fp",
        [](const std::string &path) { xorByteAt(path, 16, 0x80); },
        "fingerprint");
}

TEST(TraceStore, NonzeroPaddingBitsAreInvalid)
{
    // Hand-built file: 1 record, bitmap word with a padding bit set,
    // checksum valid — only the padding rule can reject it.
    TempStoreDir dir("store_pbt_pad");
    TraceStore store(dir.path());
    const std::string path = store.pathFor("gcc", kFp, ".pbt1");

    std::uint8_t pc_bytes[8];
    std::uint8_t bitmap_bytes[8];
    putLe64(pc_bytes, 0x4000);
    putLe64(bitmap_bytes, 0b110); // bit 0 clear, padding bits 1..2 set
    Fnv1a checksum;
    checksum.update(pc_bytes, sizeof(pc_bytes));
    checksum.update(bitmap_bytes, sizeof(bitmap_bytes));

    std::uint8_t header[64] = {};
    header[0] = 'P';
    header[1] = 'B';
    header[2] = 'T';
    header[3] = '1';
    putLe32(header + 4, 2);
    putLe64(header + 8, 1);
    putLe64(header + 16, kFp);
    putLe64(header + 24, checksum.digest());

    // Layout per PBT1 v2: one pc word after the header, then a zero
    // gap up to the bitmap's 64-byte-aligned offset (128).
    const char gap[64 - sizeof(pc_bytes)] = {};
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(header), sizeof(header));
    out.write(reinterpret_cast<const char *>(pc_bytes),
              sizeof(pc_bytes));
    out.write(gap, sizeof(gap));
    out.write(reinterpret_cast<const char *>(bitmap_bytes),
              sizeof(bitmap_bytes));
    out.close();

    PackedTrace loaded;
    std::string why;
    EXPECT_EQ(store.loadPacked("gcc", kFp, loaded, why),
              StoreStatus::Invalid);
    EXPECT_NE(why.find("padding"), std::string::npos) << why;
}

TEST(TraceStore, StemSanitizesHostileNames)
{
    const std::string stem = TraceStore::stemFor("a/b c!", 0xff);
    EXPECT_EQ(stem, "a_b_c_-00000000000000ff");
    EXPECT_EQ(TraceStore::stemFor("", 1), "trace-0000000000000001");
}

TEST(ResolveTraceStoreDir, FlagWinsOverEverything)
{
    ::setenv("BPSIM_TRACE_CACHE", "/env/dir", 1);
    EXPECT_EQ(resolveTraceStoreDir("/flag/dir"), "/flag/dir");
    ::unsetenv("BPSIM_TRACE_CACHE");
}

TEST(ResolveTraceStoreDir, EnvThenDefault)
{
    ::setenv("BPSIM_TRACE_CACHE", "/env/dir", 1);
    EXPECT_EQ(resolveTraceStoreDir(""), "/env/dir");
    ::unsetenv("BPSIM_TRACE_CACHE");
    EXPECT_EQ(resolveTraceStoreDir(""), ".bpsim-cache");
}

TEST(ResolveTraceStoreDir, DisableSpellings)
{
    EXPECT_EQ(resolveTraceStoreDir("none"), "");
    EXPECT_EQ(resolveTraceStoreDir("off"), "");
    EXPECT_EQ(resolveTraceStoreDir("0"), "");
    ::setenv("BPSIM_TRACE_CACHE", "none", 1);
    EXPECT_EQ(resolveTraceStoreDir(""), "");
    ::unsetenv("BPSIM_TRACE_CACHE");
}

} // namespace
} // namespace bpsim
