/** @file Tests for the perceptron predictor. */

#include <gtest/gtest.h>

#include "predictors/perceptron.hh"

namespace bpsim
{
namespace
{

PerceptronConfig
smallConfig()
{
    PerceptronConfig cfg;
    cfg.tableIndexBits = 4;
    cfg.historyBits = 8;
    return cfg;
}

TEST(Perceptron, FreshPredictsTaken)
{
    // All-zero weights give output 0; the convention is taken.
    PerceptronPredictor predictor(smallConfig());
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_EQ(predictor.outputFor(0x1000), 0);
}

TEST(Perceptron, LearnsStrongBias)
{
    PerceptronPredictor predictor(smallConfig());
    for (int i = 0; i < 100; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
    EXPECT_LT(predictor.outputFor(0x1000), 0);
}

TEST(Perceptron, LearnsAlternation)
{
    PerceptronPredictor predictor(smallConfig());
    bool outcome = false;
    for (int i = 0; i < 200; ++i) {
        predictor.update(0x1000, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 50; ++i) {
        correct += predictor.predict(0x1000) == outcome;
        predictor.update(0x1000, outcome);
        outcome = !outcome;
    }
    EXPECT_GE(correct, 49);
}

TEST(Perceptron, LearnsDeepSingleBitCorrelation)
{
    // Outcome = history bit 7 — beyond a small PHT's reach, easy for
    // a perceptron: only one weight needs to grow.
    PerceptronPredictor predictor(smallConfig());
    std::uint64_t shadow_history = 0;
    int correct = 0, measured = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool outcome = (shadow_history >> 7) & 1;
        if (i > 1000) {
            ++measured;
            correct += predictor.predict(0x1000) == outcome;
        }
        predictor.update(0x1000, outcome);
        shadow_history = (shadow_history << 1) |
                         (i % 3 == 0 ? 1ULL : 0ULL);
        // Drive the real history with the same bit stream.
        // (The outcome itself enters history too; feed a second
        // branch to keep the example honest.)
    }
    EXPECT_GT(correct, measured * 8 / 10);
}

TEST(Perceptron, WeightsSaturate)
{
    PerceptronConfig cfg = smallConfig();
    cfg.weightBits = 4; // range -8..7
    PerceptronPredictor predictor(cfg);
    for (int i = 0; i < 1000; ++i)
        predictor.update(0x1000, true);
    // Bias weight saturated at +7; with zero history contribution
    // magnitude stays within range.
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_LE(predictor.outputFor(0x1000),
              7 * (1 + static_cast<int>(cfg.historyBits)));
}

TEST(Perceptron, SeparateTableEntries)
{
    // Interleaved opposite-bias branches train different perceptrons;
    // measure each at its own history phase (global history is
    // shared, so out-of-phase probes are not meaningful).
    PerceptronPredictor predictor(smallConfig());
    int correct_a = 0, correct_b = 0;
    for (int i = 0; i < 60; ++i) {
        if (i >= 10) {
            correct_a += predictor.predict(0x1000) == false;
        }
        predictor.update(0x1000, false);
        if (i >= 10) {
            correct_b += predictor.predict(0x1004) == true;
        }
        predictor.update(0x1004, true);
    }
    EXPECT_GE(correct_a, 48);
    EXPECT_GE(correct_b, 48);
}

TEST(Perceptron, ResetZeroesWeights)
{
    PerceptronPredictor predictor(smallConfig());
    for (int i = 0; i < 50; ++i)
        predictor.update(0x1000, false);
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_EQ(predictor.outputFor(0x1000), 0);
}

TEST(Perceptron, StorageAccounting)
{
    PerceptronConfig cfg;
    cfg.tableIndexBits = 6;
    cfg.historyBits = 16;
    cfg.weightBits = 8;
    PerceptronPredictor predictor(cfg);
    // 64 perceptrons x 17 weights x 8 bits + 16 history bits.
    EXPECT_EQ(predictor.storageBits(), 64u * 17 * 8 + 16);
    EXPECT_EQ(predictor.counterBits(), 64u * 17 * 8);
    EXPECT_EQ(predictor.directionCounters(), 64u);
}

TEST(Perceptron, DetailReportsTableEntry)
{
    PerceptronPredictor predictor(smallConfig());
    const PredictionDetail detail = predictor.predictDetailed(0x1010);
    EXPECT_TRUE(detail.usesCounter);
    EXPECT_EQ(detail.counterId, predictor.indexFor(0x1010));
}

TEST(PerceptronDeath, BadConfigIsFatal)
{
    PerceptronConfig cfg = smallConfig();
    cfg.historyBits = 0;
    EXPECT_EXIT(PerceptronPredictor{cfg}, ::testing::ExitedWithCode(1),
                "history");
    cfg = smallConfig();
    cfg.weightBits = 1;
    EXPECT_EXIT(PerceptronPredictor{cfg}, ::testing::ExitedWithCode(1),
                "weights");
}

} // namespace
} // namespace bpsim
