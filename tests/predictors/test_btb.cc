/** @file Tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "predictors/btb.hh"

namespace bpsim
{
namespace
{

BtbConfig
tinyConfig()
{
    BtbConfig cfg;
    cfg.setsLog2 = 2; // 4 sets
    cfg.ways = 2;
    cfg.tagBits = 8;
    return cfg;
}

TEST(Btb, MissesWhenEmpty)
{
    BranchTargetBuffer btb(tinyConfig());
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.stats().lookups, 1u);
    EXPECT_EQ(btb.stats().hits, 0u);
}

TEST(Btb, HitAfterTakenUpdate)
{
    BranchTargetBuffer btb(tinyConfig());
    btb.update(0x1000, 0x2000, true);
    const auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
    EXPECT_EQ(btb.stats().allocations, 1u);
}

TEST(Btb, NotTakenDoesNotAllocate)
{
    BranchTargetBuffer btb(tinyConfig());
    btb.update(0x1000, 0x2000, false);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.stats().allocations, 0u);
}

TEST(Btb, TargetChangeIsTrackedAndCounted)
{
    BranchTargetBuffer btb(tinyConfig());
    btb.update(0x1000, 0x2000, true);
    btb.update(0x1000, 0x3000, true);
    EXPECT_EQ(btb.stats().targetMismatches, 1u);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, AssociativityHoldsConflictingEntries)
{
    BranchTargetBuffer btb(tinyConfig());
    // Two pcs mapping to the same set (4 sets -> 16-byte stride on
    // word-aligned index bits): 2-way must hold both.
    const std::uint64_t pc_a = 0x1000;
    const std::uint64_t pc_b = pc_a + (4u << 2); // same set, diff tag
    btb.update(pc_a, 0xa, true);
    btb.update(pc_b, 0xb, true);
    EXPECT_EQ(*btb.lookup(pc_a), 0xau);
    EXPECT_EQ(*btb.lookup(pc_b), 0xbu);
}

TEST(Btb, LruEvictsOldest)
{
    BranchTargetBuffer btb(tinyConfig());
    const std::uint64_t stride = 4u << 2; // same-set stride
    const std::uint64_t pc_a = 0x1000, pc_b = pc_a + stride,
                        pc_c = pc_a + 2 * stride;
    btb.update(pc_a, 0xa, true);
    btb.update(pc_b, 0xb, true);
    // Touch A so B becomes LRU, then insert C.
    ASSERT_TRUE(btb.lookup(pc_a).has_value());
    btb.update(pc_c, 0xc, true);
    EXPECT_EQ(btb.stats().evictions, 1u);
    EXPECT_TRUE(btb.lookup(pc_a).has_value()) << "A was recently used";
    EXPECT_FALSE(btb.lookup(pc_b).has_value()) << "B was the victim";
    EXPECT_TRUE(btb.lookup(pc_c).has_value());
}

TEST(Btb, HitRate)
{
    BranchTargetBuffer btb(tinyConfig());
    btb.update(0x1000, 0x2000, true);
    btb.lookup(0x1000);
    // 0x5010 shares the set but differs in the partial tag.
    btb.lookup(0x5010);
    EXPECT_DOUBLE_EQ(btb.stats().hitRate(), 0.5);
}

TEST(Btb, ResetClearsEverything)
{
    BranchTargetBuffer btb(tinyConfig());
    btb.update(0x1000, 0x2000, true);
    btb.reset();
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.stats().lookups, 1u) << "stats restarted";
}

TEST(Btb, StorageBits)
{
    BtbConfig cfg;
    cfg.setsLog2 = 9;
    cfg.ways = 4;
    cfg.tagBits = 8;
    BranchTargetBuffer btb(cfg);
    // 2048 entries x (1 valid + 8 tag + 32 target + 2 LRU).
    EXPECT_EQ(btb.storageBits(), 2048u * (1 + 8 + 32 + 2));
}

TEST(Btb, NameDescribesGeometry)
{
    EXPECT_EQ(BranchTargetBuffer(tinyConfig()).name(),
              "btb(sets=4,ways=2,tag=8)");
}

TEST(BtbDeath, BadGeometryIsFatal)
{
    BtbConfig cfg = tinyConfig();
    cfg.ways = 0;
    EXPECT_EXIT(BranchTargetBuffer{cfg}, ::testing::ExitedWithCode(1),
                "associativity");
    cfg = tinyConfig();
    cfg.tagBits = 0;
    EXPECT_EXIT(BranchTargetBuffer{cfg}, ::testing::ExitedWithCode(1),
                "tags");
}

} // namespace
} // namespace bpsim
