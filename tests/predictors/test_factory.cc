/** @file Tests for the predictor factory and spec parsing. */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/factory.hh"

namespace bpsim
{
namespace
{

TEST(PredictorSpec, ParsesKindOnly)
{
    const PredictorSpec spec = PredictorSpec::parse("taken");
    EXPECT_EQ(spec.kind, "taken");
    EXPECT_TRUE(spec.params.empty());
}

TEST(PredictorSpec, ParsesParams)
{
    const PredictorSpec spec = PredictorSpec::parse("gshare:n=12,h=8");
    EXPECT_EQ(spec.kind, "gshare");
    EXPECT_EQ(spec.require("n"), 12u);
    EXPECT_EQ(spec.require("h"), 8u);
}

TEST(PredictorSpec, GetWithDefault)
{
    const PredictorSpec spec = PredictorSpec::parse("bimode:d=10");
    EXPECT_EQ(spec.get("d", 0), 10u);
    EXPECT_EQ(spec.get("c", 99), 99u);
}

TEST(PredictorSpec, HexValues)
{
    const PredictorSpec spec = PredictorSpec::parse("bimodal:n=0x0c");
    EXPECT_EQ(spec.require("n"), 12u);
}

TEST(PredictorSpecDeath, MissingRequiredIsFatal)
{
    const PredictorSpec spec = PredictorSpec::parse("gshare:h=8");
    EXPECT_EXIT(spec.require("n"), ::testing::ExitedWithCode(1),
                "requires parameter");
}

TEST(PredictorSpecTryParse, GoodSpecParses)
{
    const ParseResult result =
        PredictorSpec::tryParse("gshare:n=12,h=8");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.spec.kind, "gshare");
    EXPECT_EQ(result.spec.get("n", 0), 12u);
    EXPECT_EQ(result.spec.get("h", 0), 8u);
}

TEST(PredictorSpecTryParse, MalformedPairReturnsError)
{
    const ParseResult result = PredictorSpec::tryParse("gshare:n12");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("expected key=value"),
              std::string::npos);
}

TEST(PredictorSpecTryParse, EmptyValueReturnsError)
{
    const ParseResult result = PredictorSpec::tryParse("gshare:n=");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("not a number"), std::string::npos);
}

TEST(PredictorSpecTryParse, DuplicateKeyReturnsError)
{
    const ParseResult result =
        PredictorSpec::tryParse("gshare:n=4,n=5");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("duplicate parameter"),
              std::string::npos);
}

TEST(PredictorSpecTryParse, EmptyKindReturnsError)
{
    const ParseResult result = PredictorSpec::tryParse(":n=4");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("empty predictor kind"),
              std::string::npos);
}

TEST(FactoryTry, UnknownKindReturnsError)
{
    const PredictorResult result = tryMakePredictor("bogus:");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.predictor, nullptr);
    EXPECT_NE(result.error.find("unknown predictor kind"),
              std::string::npos);
}

TEST(FactoryTry, MissingRequiredParamReturnsError)
{
    const PredictorResult result = tryMakePredictor("gshare:h=8");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("requires parameter"),
              std::string::npos);
}

TEST(FactoryTry, MisspelledParamKeyReturnsErrorNamingValidKeys)
{
    // "hist" is not a gshare key; it used to parse and silently fall
    // back to the default history length. The registry schema now
    // rejects it, naming the keys that would have been accepted.
    const PredictorResult result = tryMakePredictor("gshare:hist=12");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("unknown parameter 'hist'"),
              std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("accepted keys"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("n, h"), std::string::npos)
        << result.error;
}

TEST(FactoryTry, ParamOnParameterlessKindReturnsError)
{
    const PredictorResult result = tryMakePredictor("taken:n=4");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("takes no parameters"),
              std::string::npos)
        << result.error;
}

TEST(FactoryTry, ParseErrorPropagates)
{
    const PredictorResult result = tryMakePredictor("gshare:n=");
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("not a number"), std::string::npos);
}

TEST(FactoryTry, GoodConfigBuilds)
{
    const PredictorResult result = tryMakePredictor("gshare:n=10");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.error.empty());
    EXPECT_EQ(result.predictor->name(), "gshare(n=10,h=10)");
}

TEST(PredictorSpecDeath, MalformedPairIsFatal)
{
    EXPECT_EXIT(PredictorSpec::parse("gshare:n12"),
                ::testing::ExitedWithCode(1), "expected key=value");
}

TEST(PredictorSpecDeath, NonNumericValueIsFatal)
{
    EXPECT_EXIT(PredictorSpec::parse("gshare:n=abc"),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(PredictorSpecTryParse, NegativeValueReturnsError)
{
    // strtoul wraps negatives, so "d=-1" used to parse as 2^64-1 and
    // then truncate; it must be rejected outright.
    const ParseResult result = PredictorSpec::tryParse("bimode:d=-1");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.error.find("non-negative"), std::string::npos)
        << result.error;
}

TEST(PredictorSpecTryParse, ValueAboveUintMaxReturnsError)
{
    // 2^32 would silently truncate to 0 through the unsigned cast.
    const ParseResult just_over =
        PredictorSpec::tryParse("bimode:d=4294967296");
    ASSERT_FALSE(just_over.ok());
    EXPECT_NE(just_over.error.find("out of range"), std::string::npos)
        << just_over.error;

    // Far past 2^64: strtoull itself clamps and reports ERANGE.
    const ParseResult huge =
        PredictorSpec::tryParse("bimode:d=99999999999999999999999");
    ASSERT_FALSE(huge.ok());
    EXPECT_NE(huge.error.find("out of range"), std::string::npos);
}

TEST(PredictorSpecTryParse, UintMaxItselfStillParses)
{
    const ParseResult result =
        PredictorSpec::tryParse("bimode:d=4294967295");
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.spec.get("d", 0), 4294967295u);
}

TEST(Factory, BuildsEveryKnownKind)
{
    // The registry's documented examples enumerate every kind — no
    // hand-maintained list to fall out of sync.
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        const PredictorPtr predictor = makePredictor(info.example);
        ASSERT_NE(predictor, nullptr) << info.example;
        // Every predictor must answer the whole interface.
        predictor->predict(0x1000);
        predictor->update(0x1000, true);
        predictor->reset();
        EXPECT_FALSE(predictor->name().empty()) << info.example;
    }
}

TEST(Factory, GshareHistoryDefaultsToIndexWidth)
{
    const PredictorPtr predictor = makePredictor("gshare:n=10");
    EXPECT_EQ(predictor->name(), "gshare(n=10,h=10)");
}

TEST(Factory, BimodeDefaultsAreCanonical)
{
    const PredictorPtr predictor = makePredictor("bimode:d=9");
    EXPECT_EQ(predictor->name(), "bimode(d=9,c=9,h=9)");
}

TEST(Factory, BimodeAblationFlags)
{
    const PredictorPtr full = makePredictor("bimode:d=6,partial=0");
    EXPECT_NE(full->name().find("full-update"), std::string::npos);
    const PredictorPtr choice = makePredictor("bimode:d=6,alwayschoice=1");
    EXPECT_NE(choice->name().find("always-choice"), std::string::npos);
}

TEST(Factory, WideCounterParameter)
{
    const PredictorPtr predictor = makePredictor("bimodal:n=6,w=3");
    EXPECT_EQ(predictor->storageBits(), 64u * 3);
}

TEST(FactoryDeath, UnknownKindIsFatal)
{
    EXPECT_EXIT(makePredictor("tage:n=10"),
                ::testing::ExitedWithCode(1), "unknown predictor kind");
}

TEST(FactoryDeath, UnknownParamKeyIsFatal)
{
    EXPECT_EXIT(makePredictor("gshare:hist=12"),
                ::testing::ExitedWithCode(1), "unknown parameter");
}

TEST(FactoryDeath, EmptyKindIsFatal)
{
    EXPECT_EXIT(makePredictor(":n=4"), ::testing::ExitedWithCode(1),
                "empty predictor kind");
}

} // namespace
} // namespace bpsim
