/**
 * @file
 * Cross-predictor property tests: invariants every predictor in the
 * library must satisfy, swept over factory configurations with
 * TEST_P. These catch interface-contract violations that
 * per-predictor tests miss.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/factory.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

/** A deterministic pseudo-workload of (pc, outcome) pairs. */
std::vector<std::pair<std::uint64_t, bool>>
syntheticStream(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint64_t, bool>> stream;
    stream.reserve(n);
    std::uint64_t pc = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        // A small hot set of addresses with mixed behaviours.
        pc = 0x400000 + 4 * rng.nextBounded(600);
        const bool outcome =
            (pc % 3 == 0) ? rng.nextBool(0.9)
                          : (pc % 3 == 1) ? rng.nextBool(0.15)
                                          : (i % 2 == 0);
        stream.emplace_back(pc, outcome);
    }
    return stream;
}

class PredictorPropertyTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    PredictorPtr
    make() const
    {
        return makePredictor(GetParam());
    }
};

TEST_P(PredictorPropertyTest, PredictIsConstAndStable)
{
    const PredictorPtr predictor = make();
    for (std::uint64_t pc : {0x1000ULL, 0x2348ULL, 0x9abcULL}) {
        const PredictionDetail first = predictor->predictDetailed(pc);
        for (int i = 0; i < 5; ++i) {
            const PredictionDetail again = predictor->predictDetailed(pc);
            EXPECT_EQ(again.taken, first.taken);
            EXPECT_EQ(again.usesCounter, first.usesCounter);
            EXPECT_EQ(again.bank, first.bank);
            EXPECT_EQ(again.counterId, first.counterId);
        }
    }
}

TEST_P(PredictorPropertyTest, ResetReproducesFreshBehavior)
{
    const PredictorPtr trained = make();
    const PredictorPtr fresh = make();
    const auto stream = syntheticStream(2000, 99);

    // Train, then reset.
    for (const auto &[pc, outcome] : stream) {
        trained->observeTarget(pc, pc + 64);
        trained->update(pc, outcome);
    }
    trained->reset();

    // From reset, behaviour must be bit-identical to a fresh build.
    for (const auto &[pc, outcome] : stream) {
        ASSERT_EQ(trained->predict(pc), fresh->predict(pc))
            << GetParam() << " diverged after reset at pc 0x"
            << std::hex << pc;
        trained->observeTarget(pc, pc + 64);
        fresh->observeTarget(pc, pc + 64);
        trained->update(pc, outcome);
        fresh->update(pc, outcome);
    }
}

TEST_P(PredictorPropertyTest, DeterministicAcrossInstances)
{
    const PredictorPtr a = make();
    const PredictorPtr b = make();
    for (const auto &[pc, outcome] : syntheticStream(2000, 7)) {
        ASSERT_EQ(a->predict(pc), b->predict(pc)) << GetParam();
        a->update(pc, outcome);
        b->update(pc, outcome);
    }
}

TEST_P(PredictorPropertyTest, CounterIdsStayInRange)
{
    const PredictorPtr predictor = make();
    const std::uint64_t counters = predictor->directionCounters();
    for (const auto &[pc, outcome] : syntheticStream(3000, 13)) {
        const PredictionDetail detail = predictor->predictDetailed(pc);
        if (detail.usesCounter) {
            ASSERT_GT(counters, 0u) << GetParam();
            ASSERT_LT(detail.counterId, counters) << GetParam();
        }
        predictor->update(pc, outcome);
    }
}

TEST_P(PredictorPropertyTest, CounterBitsNotAboveStorageBits)
{
    const PredictorPtr predictor = make();
    EXPECT_LE(predictor->counterBits(), predictor->storageBits())
        << GetParam();
}

TEST_P(PredictorPropertyTest, NameIsStable)
{
    EXPECT_EQ(make()->name(), make()->name());
    EXPECT_FALSE(make()->name().empty());
}

TEST_P(PredictorPropertyTest, LearnsAnUltraBiasedBranch)
{
    // After heavy one-sided training, every adaptive predictor must
    // follow the bias; static predictors are exempted by checking
    // only those with state.
    const PredictorPtr predictor = make();
    if (predictor->storageBits() == 0)
        GTEST_SKIP() << "stateless predictor";
    const std::string kind = predictor->name();
    if (kind.rfind("btfn", 0) == 0)
        GTEST_SKIP() << "BTFN ignores outcomes by design";
    for (int i = 0; i < 200; ++i)
        predictor->update(0x4440, true);
    EXPECT_TRUE(predictor->predict(0x4440)) << GetParam();
    for (int i = 0; i < 200; ++i)
        predictor->update(0x8880, false);
    EXPECT_FALSE(predictor->predict(0x8880)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PredictorPropertyTest,
    ::testing::Values(
        "taken", "nottaken", "btfn:l=8", "bimodal:n=10",
        "bimodal:n=6,w=3", "gag:h=8", "gas:h=6,a=3", "pag:h=6,l=7",
        "pas:h=5,l=7,a=3", "gshare:n=10,h=10", "gshare:n=10,h=4",
        "gshare:n=10,h=0", "bimode:d=9", "bimode:d=9,c=7",
        "bimode:d=9,h=5", "bimode:d=9,partial=0",
        "bimode:d=9,alwayschoice=1", "agree:n=10", "agree:n=10,b=7",
        "gskew:n=8", "gskew:n=8,partial=0", "yags:c=10,n=8,t=7",
        "filter:n=10", "filter:n=10,k=3,b=7",
        "tournament:n=8"));

} // namespace
} // namespace bpsim
