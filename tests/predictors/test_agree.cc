/** @file Tests for the agree predictor. */

#include <gtest/gtest.h>

#include "predictors/agree.hh"

namespace bpsim
{
namespace
{

AgreeConfig
tinyConfig()
{
    AgreeConfig cfg;
    cfg.indexBits = 4;
    cfg.historyBits = 0;
    cfg.biasIndexBits = 8;
    return cfg;
}

TEST(Agree, LearnsStrongBiases)
{
    AgreePredictor predictor(tinyConfig());
    for (int i = 0; i < 20; ++i) {
        predictor.update(0x1000, true);
        predictor.update(0x2004, false);
    }
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_FALSE(predictor.predict(0x2004));
}

TEST(Agree, BiasBitFixedAtFirstOutcome)
{
    AgreePredictor predictor(tinyConfig());
    predictor.update(0x1000, false); // bias := not-taken
    // Subsequent taken outcomes train "disagree", not the bias.
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, true);
    EXPECT_TRUE(predictor.predict(0x1000))
        << "counter must have learned to disagree with the NT bias";
}

TEST(Agree, ConvertsDestructiveAliasingToNeutral)
{
    // Two opposite-biased branches sharing an agree counter both
    // push it toward "agree" — the scheme's core mechanism.
    AgreeConfig cfg = tinyConfig();
    AgreePredictor predictor(cfg);
    const std::uint64_t pc_taken = 0x1000;
    const std::uint64_t pc_not_taken = 0x1040; // aliases at 4 bits

    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        wrong += predictor.predict(pc_taken) != true;
        predictor.update(pc_taken, true);
        wrong += predictor.predict(pc_not_taken) != false;
        predictor.update(pc_not_taken, false);
    }
    EXPECT_LE(wrong, 3) << "aliased opposite biases must coexist";
}

TEST(Agree, UnseenBranchDefaultsToTaken)
{
    AgreePredictor predictor(tinyConfig());
    EXPECT_TRUE(predictor.predict(0x5000));
}

TEST(Agree, ResetClearsBiasBits)
{
    AgreePredictor predictor(tinyConfig());
    predictor.update(0x1000, false);
    predictor.reset();
    // After reset the first outcome re-fixes the bias.
    predictor.update(0x1000, true);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Agree, StorageAccounting)
{
    AgreeConfig cfg;
    cfg.indexBits = 10;
    cfg.historyBits = 10;
    cfg.biasIndexBits = 9;
    AgreePredictor predictor(cfg);
    EXPECT_EQ(predictor.counterBits(), 1024u * 2);
    // counters + history + bias bits + valid bits.
    EXPECT_EQ(predictor.storageBits(), 1024u * 2 + 10 + 512 + 512);
    EXPECT_EQ(predictor.directionCounters(), 1024u);
}

TEST(Agree, DetailInRange)
{
    AgreeConfig cfg;
    cfg.indexBits = 6;
    cfg.historyBits = 6;
    cfg.biasIndexBits = 6;
    AgreePredictor predictor(cfg);
    std::uint64_t pc = 0x400000;
    for (int i = 0; i < 300; ++i) {
        const PredictionDetail detail = predictor.predictDetailed(pc);
        EXPECT_TRUE(detail.usesCounter);
        EXPECT_LT(detail.counterId, predictor.directionCounters());
        predictor.update(pc, i % 4 != 0);
        pc += 12;
    }
}

TEST(AgreeDeath, HistoryWiderThanIndexIsFatal)
{
    AgreeConfig cfg;
    cfg.indexBits = 4;
    cfg.historyBits = 5;
    EXPECT_EXIT(AgreePredictor{cfg}, ::testing::ExitedWithCode(1),
                "cannot exceed");
}

} // namespace
} // namespace bpsim
