/** @file Tests for the static baseline predictors. */

#include <gtest/gtest.h>

#include "predictors/static_predictors.hh"

namespace bpsim
{
namespace
{

TEST(AlwaysTaken, PredictsTaken)
{
    AlwaysTakenPredictor predictor;
    EXPECT_TRUE(predictor.predict(0x1000));
    predictor.update(0x1000, false);
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_EQ(predictor.storageBits(), 0u);
    EXPECT_EQ(predictor.directionCounters(), 0u);
}

TEST(AlwaysNotTaken, PredictsNotTaken)
{
    AlwaysNotTakenPredictor predictor;
    EXPECT_FALSE(predictor.predict(0x1000));
    predictor.update(0x1000, true);
    EXPECT_FALSE(predictor.predict(0x1000));
}

TEST(StaticPredictors, NoCounterInDetail)
{
    AlwaysTakenPredictor taken;
    EXPECT_FALSE(taken.predictDetailed(0x1000).usesCounter);
    AlwaysNotTakenPredictor not_taken;
    EXPECT_FALSE(not_taken.predictDetailed(0x1000).usesCounter);
}

TEST(Btfn, DefaultsToNotTaken)
{
    BtfnPredictor predictor(8);
    EXPECT_FALSE(predictor.predict(0x1000))
        << "unknown branches default to forward/not-taken";
}

TEST(Btfn, BackwardBranchPredictedTaken)
{
    BtfnPredictor predictor(8);
    predictor.observeTarget(0x1000, 0x0f00); // backward target
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Btfn, ForwardBranchPredictedNotTaken)
{
    BtfnPredictor predictor(8);
    predictor.observeTarget(0x1000, 0x1100); // forward target
    EXPECT_FALSE(predictor.predict(0x1000));
}

TEST(Btfn, SelfTargetCountsAsBackward)
{
    BtfnPredictor predictor(8);
    predictor.observeTarget(0x1000, 0x1000);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Btfn, UpdateDoesNotChangeSense)
{
    BtfnPredictor predictor(8);
    predictor.observeTarget(0x1000, 0x0f00);
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, false);
    EXPECT_TRUE(predictor.predict(0x1000))
        << "BTFN is static: outcomes must not retrain it";
}

TEST(Btfn, ResetForgetsSenses)
{
    BtfnPredictor predictor(8);
    predictor.observeTarget(0x1000, 0x0f00);
    predictor.reset();
    EXPECT_FALSE(predictor.predict(0x1000));
}

TEST(Btfn, StorageAccounting)
{
    BtfnPredictor predictor(10);
    EXPECT_EQ(predictor.storageBits(), 1024u * 2);
}

TEST(Btfn, AliasedSlotsShareSense)
{
    BtfnPredictor predictor(4);
    predictor.observeTarget(0x1000, 0x0f00);
    // 64-byte stride aliases at 4 index bits.
    EXPECT_TRUE(predictor.predict(0x1040));
}

} // namespace
} // namespace bpsim
