/** @file Tests for the filtering predictor (Chang et al.). */

#include <gtest/gtest.h>

#include "predictors/filter.hh"

namespace bpsim
{
namespace
{

FilterConfig
tinyConfig()
{
    FilterConfig cfg;
    cfg.indexBits = 4;
    cfg.historyBits = 0;
    cfg.filterIndexBits = 8;
    cfg.filterCounterBits = 3; // saturates at 7
    return cfg;
}

TEST(Filter, UnfilteredBranchUsesPht)
{
    FilterPredictor predictor(tinyConfig());
    EXPECT_FALSE(predictor.isFiltered(0x1000));
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, FilterPredictor::kPhtBank);
    EXPECT_TRUE(detail.taken) << "PHT starts weakly-taken";
}

TEST(Filter, LongRunEngagesFilter)
{
    FilterPredictor predictor(tinyConfig());
    for (int i = 0; i < 7; ++i)
        predictor.update(0x1000, false);
    EXPECT_TRUE(predictor.isFiltered(0x1000));
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, FilterPredictor::kFilterBank);
    EXPECT_FALSE(detail.taken);
}

TEST(Filter, DirectionChangeDisengagesFilter)
{
    FilterPredictor predictor(tinyConfig());
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, true);
    ASSERT_TRUE(predictor.isFiltered(0x1000));
    predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.isFiltered(0x1000));
}

TEST(Filter, FilteredBranchesDoNotPolluteThePht)
{
    // A strongly taken branch saturates its filter; afterwards an
    // aliased opposite-biased branch owns the PHT slot outright.
    FilterPredictor predictor(tinyConfig());
    const std::uint64_t pc_taken = 0x1000;
    const std::uint64_t pc_not_taken = 0x1040; // same PHT slot (4 bits)
    // Engage the filter on the taken branch.
    for (int i = 0; i < 8; ++i)
        predictor.update(pc_taken, true);
    ASSERT_TRUE(predictor.isFiltered(pc_taken));
    // The not-taken branch trains the PHT undisturbed.
    int wrong = 0;
    for (int i = 0; i < 50; ++i) {
        wrong += predictor.predict(pc_not_taken) != false;
        predictor.update(pc_not_taken, false);
        wrong += predictor.predict(pc_taken) != true;
        predictor.update(pc_taken, true);
    }
    EXPECT_LE(wrong, 2) << "filtering must remove the interference";
}

TEST(Filter, UnfilteredConflictStillInterferes)
{
    // Sanity check of the mechanism: with the filter disabled by a
    // huge saturation requirement... approximated by alternating
    // directions so no run ever saturates, the PHT conflict remains.
    FilterPredictor predictor(tinyConfig());
    const std::uint64_t pc_a = 0x1000, pc_b = 0x1040;
    int wrong = 0;
    for (int i = 0; i < 40; ++i) {
        const bool a_outcome = i % 2 == 0; // alternates: never filtered
        wrong += predictor.predict(pc_a) != a_outcome;
        predictor.update(pc_a, a_outcome);
        wrong += predictor.predict(pc_b) != !a_outcome;
        predictor.update(pc_b, !a_outcome);
    }
    EXPECT_GT(wrong, 20);
}

TEST(Filter, CounterIdsSpanPhtAndFilter)
{
    FilterPredictor predictor(tinyConfig());
    const PredictionDetail pht_detail = predictor.predictDetailed(0x1000);
    EXPECT_LT(pht_detail.counterId, 16u);
    for (int i = 0; i < 8; ++i)
        predictor.update(0x1000, true);
    const PredictionDetail filter_detail =
        predictor.predictDetailed(0x1000);
    EXPECT_GE(filter_detail.counterId, 16u);
    EXPECT_LT(filter_detail.counterId, predictor.directionCounters());
}

TEST(Filter, ResetDisengagesEverything)
{
    FilterPredictor predictor(tinyConfig());
    for (int i = 0; i < 8; ++i)
        predictor.update(0x1000, false);
    predictor.reset();
    EXPECT_FALSE(predictor.isFiltered(0x1000));
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Filter, StorageAccounting)
{
    FilterConfig cfg;
    cfg.indexBits = 10;
    cfg.historyBits = 10;
    cfg.filterIndexBits = 9;
    cfg.filterCounterBits = 6;
    FilterPredictor predictor(cfg);
    EXPECT_EQ(predictor.counterBits(), 1024u * 2);
    // PHT + history + filter entries (1 direction + 6 counter bits).
    EXPECT_EQ(predictor.storageBits(), 1024u * 2 + 10 + 512u * 7);
    EXPECT_EQ(predictor.directionCounters(), 1024u + 512u);
}

TEST(FilterDeath, BadConfigIsFatal)
{
    FilterConfig cfg = tinyConfig();
    cfg.historyBits = 5;
    EXPECT_EXIT(FilterPredictor{cfg}, ::testing::ExitedWithCode(1),
                "cannot exceed");
    cfg = tinyConfig();
    cfg.filterCounterBits = 0;
    EXPECT_EXIT(FilterPredictor{cfg}, ::testing::ExitedWithCode(1),
                "run counter");
}

} // namespace
} // namespace bpsim
