/** @file Tests for the GAg/GAs/PAg/PAs two-level taxonomy. */

#include <gtest/gtest.h>

#include "predictors/twolevel.hh"

namespace bpsim
{
namespace
{

TEST(TwoLevel, GAgLearnsGlobalPattern)
{
    TwoLevelPredictor gag(makeGAg(4));
    const std::uint64_t pc = 0x1000;
    // Repeating TTN pattern: determined by the last 4 outcomes.
    const bool pattern[] = {true, true, false};
    for (int i = 0; i < 120; ++i)
        gag.update(pc, pattern[i % 3]);
    int correct = 0;
    for (int i = 0; i < 30; ++i) {
        const bool expected = pattern[i % 3];
        correct += gag.predict(pc) == expected;
        gag.update(pc, expected);
    }
    EXPECT_GE(correct, 29);
}

TEST(TwoLevel, GAgIgnoresAddress)
{
    TwoLevelPredictor gag(makeGAg(6));
    EXPECT_EQ(gag.indexFor(0x1000), gag.indexFor(0x2000));
}

TEST(TwoLevel, GAsSeparatesByAddress)
{
    TwoLevelPredictor gas(makeGAs(4, 2));
    // Same history, different pc bits -> different PHTs.
    EXPECT_NE(gas.indexFor(0x1000), gas.indexFor(0x1004));
}

TEST(TwoLevel, GAsIndexLayout)
{
    TwoLevelPredictor gas(makeGAs(4, 2));
    // The pc bits sit above the history bits.
    const std::size_t index = gas.indexFor(0x1004);
    EXPECT_EQ(index >> 4, pcIndexBits(0x1004, 2));
}

TEST(TwoLevel, PAgUsesLocalHistory)
{
    TwoLevelPredictor pag(makePAg(4, 6));
    const std::uint64_t pc_a = 0x1000, pc_b = 0x1004;
    // Branch A alternates, branch B always taken; with per-address
    // history, B's behaviour must not disturb A's pattern table
    // index stream.
    bool a_outcome = false;
    for (int i = 0; i < 200; ++i) {
        pag.update(pc_a, a_outcome);
        a_outcome = !a_outcome;
        pag.update(pc_b, true);
    }
    int correct = 0;
    for (int i = 0; i < 40; ++i) {
        correct += pag.predict(pc_a) == a_outcome;
        pag.update(pc_a, a_outcome);
        a_outcome = !a_outcome;
        pag.update(pc_b, true);
        correct += pag.predict(pc_b);
        ++i;
    }
    EXPECT_GE(correct, 38);
}

TEST(TwoLevel, PAsCombinesLocalHistoryAndAddress)
{
    TwoLevelPredictor pas(makePAs(4, 6, 2));
    EXPECT_NE(pas.indexFor(0x1000), pas.indexFor(0x1004));
}

TEST(TwoLevel, Names)
{
    EXPECT_EQ(TwoLevelPredictor(makeGAg(12)).name(), "GAg(h=12)");
    EXPECT_EQ(TwoLevelPredictor(makeGAs(8, 4)).name(), "GAs(h=8,a=4)");
    EXPECT_EQ(TwoLevelPredictor(makePAg(10, 10)).name(),
              "PAg(h=10,l=10)");
    EXPECT_EQ(TwoLevelPredictor(makePAs(8, 10, 2)).name(),
              "PAs(h=8,l=10,a=2)");
}

TEST(TwoLevel, StorageAccountingGlobal)
{
    TwoLevelPredictor gas(makeGAs(8, 4));
    EXPECT_EQ(gas.counterBits(), (1u << 12) * 2);
    EXPECT_EQ(gas.storageBits(), (1u << 12) * 2 + 8);
    EXPECT_EQ(gas.directionCounters(), 1u << 12);
}

TEST(TwoLevel, StorageAccountingPerAddress)
{
    TwoLevelPredictor pas(makePAs(6, 8, 2));
    EXPECT_EQ(pas.counterBits(), (1u << 8) * 2);
    // First level: 2^8 registers of 6 bits each.
    EXPECT_EQ(pas.storageBits(), (1u << 8) * 2 + 256u * 6);
}

TEST(TwoLevel, ResetRestoresInitialPredictions)
{
    TwoLevelPredictor gag(makeGAg(6));
    for (int i = 0; i < 50; ++i)
        gag.update(0x1000, false);
    gag.reset();
    EXPECT_TRUE(gag.predict(0x1000));
}

TEST(TwoLevelDeath, OversizedIndexIsFatal)
{
    EXPECT_EXIT(TwoLevelPredictor(makeGAs(20, 20)),
                ::testing::ExitedWithCode(1), "unreasonably large");
}

/** All four taxonomy points must track a simple biased branch. */
class TaxonomyTest : public ::testing::TestWithParam<TwoLevelConfig>
{
};

TEST_P(TaxonomyTest, LearnsStrongBias)
{
    TwoLevelPredictor predictor(GetParam());
    const std::uint64_t pc = 0x1230;
    for (int i = 0; i < 100; ++i)
        predictor.update(pc, false);
    EXPECT_FALSE(predictor.predict(pc));
}

TEST_P(TaxonomyTest, DetailStaysInRange)
{
    TwoLevelPredictor predictor(GetParam());
    std::uint64_t pc = 0x400000;
    for (int i = 0; i < 300; ++i) {
        const PredictionDetail detail = predictor.predictDetailed(pc);
        EXPECT_TRUE(detail.usesCounter);
        EXPECT_LT(detail.counterId, predictor.directionCounters());
        predictor.update(pc, i % 5 < 3);
        pc += 8;
    }
}

INSTANTIATE_TEST_SUITE_P(Taxonomy, TaxonomyTest,
                         ::testing::Values(makeGAg(8), makeGAs(6, 3),
                                           makePAg(6, 8),
                                           makePAs(5, 8, 3)));

} // namespace
} // namespace bpsim
