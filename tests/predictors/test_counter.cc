/** @file Tests for saturating counters and counter tables. */

#include <gtest/gtest.h>

#include "predictors/counter.hh"

namespace bpsim
{
namespace
{

TEST(SaturatingCounter, TwoBitSequence)
{
    SaturatingCounter c(2, 0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.predictTaken());
    c.update(true);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_FALSE(c.predictTaken());
    c.update(true);
    EXPECT_EQ(c.value(), 2u);
    EXPECT_TRUE(c.predictTaken());
    c.update(true);
    EXPECT_EQ(c.value(), 3u);
    c.update(true);
    EXPECT_EQ(c.value(), 3u) << "must saturate at 3";
    c.update(false);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SaturatingCounter, SaturatesAtZero)
{
    SaturatingCounter c(2, 1);
    c.update(false);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.isSaturated());
}

TEST(SaturatingCounter, HysteresisProperty)
{
    // From strongly-taken, one not-taken outcome must not flip the
    // prediction — the defining property of 2-bit counters.
    SaturatingCounter c(2, 3);
    c.update(false);
    EXPECT_TRUE(c.predictTaken());
    c.update(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SaturatingCounter, InitialClamped)
{
    SaturatingCounter c(2, 200);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SaturatingCounter, WeakInitializers)
{
    EXPECT_EQ(SaturatingCounter::weaklyTaken(2), 2u);
    EXPECT_EQ(SaturatingCounter::weaklyNotTaken(2), 1u);
    EXPECT_EQ(SaturatingCounter::weaklyTaken(3), 4u);
    EXPECT_EQ(SaturatingCounter::weaklyNotTaken(3), 3u);
    EXPECT_EQ(SaturatingCounter::weaklyTaken(1), 1u);
    EXPECT_EQ(SaturatingCounter::weaklyNotTaken(1), 0u);
}

TEST(SaturatingCounter, WeakInitializersPredictCorrectSide)
{
    for (unsigned bits = 1; bits <= 6; ++bits) {
        SaturatingCounter taken(bits, SaturatingCounter::weaklyTaken(bits));
        SaturatingCounter not_taken(
            bits, SaturatingCounter::weaklyNotTaken(bits));
        EXPECT_TRUE(taken.predictTaken()) << "bits=" << bits;
        EXPECT_FALSE(not_taken.predictTaken()) << "bits=" << bits;
    }
}

/** Property sweep over counter widths. */
class CounterWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CounterWidthTest, ValueStaysInRange)
{
    const unsigned bits = GetParam();
    SaturatingCounter c(bits, 0);
    for (int i = 0; i < 300; ++i) {
        c.update(i % 3 != 0);
        EXPECT_LE(c.value(), maskBits(bits));
    }
}

TEST_P(CounterWidthTest, AllTakenSaturatesHigh)
{
    const unsigned bits = GetParam();
    SaturatingCounter c(bits, 0);
    for (unsigned i = 0; i < (1u << bits) + 5; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), maskBits(bits));
    EXPECT_TRUE(c.predictTaken());
    EXPECT_TRUE(c.isSaturated());
}

TEST_P(CounterWidthTest, WeakFlipNeedsOneOutcome)
{
    const unsigned bits = GetParam();
    SaturatingCounter c(bits, SaturatingCounter::weaklyTaken(bits));
    c.update(false);
    EXPECT_FALSE(c.predictTaken())
        << "weakly-taken must flip after one not-taken";
}

INSTANTIATE_TEST_SUITE_P(Widths, CounterWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(CounterTable, InitialValueApplied)
{
    CounterTable table(16, 2, 2);
    for (std::size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(table.value(i), 2u);
        EXPECT_TRUE(table.predictTaken(i));
    }
}

TEST(CounterTable, UpdatesAreIndependent)
{
    CounterTable table(8, 2, 1);
    table.update(3, true);
    table.update(3, true);
    EXPECT_EQ(table.value(3), 3u);
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (i != 3) {
            EXPECT_EQ(table.value(i), 1u);
        }
    }
}

TEST(CounterTable, ResetRestoresInitial)
{
    CounterTable table(8, 2, 1);
    table.update(0, true);
    table.update(7, false);
    table.reset();
    for (std::size_t i = 0; i < table.size(); ++i)
        EXPECT_EQ(table.value(i), 1u);
}

TEST(CounterTable, SetClamps)
{
    CounterTable table(4, 2, 0);
    table.set(0, 250);
    EXPECT_EQ(table.value(0), 3u);
}

TEST(CounterTable, StorageBits)
{
    CounterTable table(1024, 2, 0);
    EXPECT_EQ(table.storageBits(), 2048u);
    CounterTable wide(256, 3, 0);
    EXPECT_EQ(wide.storageBits(), 768u);
}

TEST(CounterTableDeath, NonPowerOfTwoPanics)
{
    EXPECT_DEATH(CounterTable(100, 2, 0), "not a power of two");
}

TEST(CounterTableDeath, ZeroWidthPanics)
{
    EXPECT_DEATH(CounterTable(16, 0, 0), "out of range");
}

} // namespace
} // namespace bpsim
