/** @file Tests for the YAGS predictor. */

#include <gtest/gtest.h>

#include "predictors/yags.hh"

namespace bpsim
{
namespace
{

YagsConfig
tinyConfig()
{
    YagsConfig cfg;
    cfg.choiceIndexBits = 6;
    cfg.cacheIndexBits = 4;
    cfg.tagBits = 6;
    cfg.historyBits = 0;
    return cfg;
}

TEST(Yags, FallsBackToChoiceWhenCacheMisses)
{
    YagsPredictor predictor(tinyConfig());
    // Fresh predictor: caches empty, choice weakly-taken.
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_TRUE(detail.taken);
    EXPECT_EQ(detail.bank, YagsPredictor::kChoiceBank);
}

TEST(Yags, LearnsStrongBiases)
{
    YagsPredictor predictor(tinyConfig());
    for (int i = 0; i < 20; ++i) {
        predictor.update(0x1000, true);
        predictor.update(0x2004, false);
    }
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_FALSE(predictor.predict(0x2004));
}

TEST(Yags, AllocatesExceptionOnBiasDeviation)
{
    YagsPredictor predictor(tinyConfig());
    // Establish a taken bias.
    for (int i = 0; i < 6; ++i)
        predictor.update(0x1000, true);
    // One deviation allocates a not-taken-cache entry...
    predictor.update(0x1000, false);
    // ...which now serves the prediction (cache hit overrides).
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, YagsPredictor::kNotTakenCache);
    EXPECT_FALSE(detail.taken);
}

TEST(Yags, NoAllocationWhenChoiceCorrect)
{
    YagsPredictor predictor(tinyConfig());
    for (int i = 0; i < 6; ++i)
        predictor.update(0x1000, true);
    // Outcome agrees with the bias: no exception entry is created.
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, YagsPredictor::kChoiceBank);
}

TEST(Yags, TagsSeparateAliasedBranches)
{
    YagsPredictor predictor(tinyConfig());
    // Two pcs sharing a cache index (4 bits) but with distinct tags.
    const std::uint64_t pc_a = 0x1000;
    const std::uint64_t pc_b = pc_a + (1ULL << (2 + 4)); // differs above
    // Train A taken-biased with one exception; B stays not-taken.
    for (int i = 0; i < 6; ++i)
        predictor.update(pc_a, true);
    predictor.update(pc_a, false); // allocates NT-cache for A's tag
    for (int i = 0; i < 6; ++i)
        predictor.update(pc_b, false);
    // B's choice is NT; it consults the taken cache, where A's NT
    // entry must not match (different tag / different cache).
    EXPECT_FALSE(predictor.predict(pc_b));
}

TEST(Yags, DeAliasesOppositeBiasedBranches)
{
    YagsConfig cfg = tinyConfig();
    cfg.choiceIndexBits = 8;
    YagsPredictor predictor(cfg);
    const std::uint64_t pc_taken = 0x1000;
    const std::uint64_t pc_not_taken = 0x1040;
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        wrong += predictor.predict(pc_taken) != true;
        predictor.update(pc_taken, true);
        wrong += predictor.predict(pc_not_taken) != false;
        predictor.update(pc_not_taken, false);
    }
    EXPECT_LE(wrong, 3);
}

TEST(Yags, StorageAccountsTagsSeparately)
{
    YagsConfig cfg;
    cfg.choiceIndexBits = 10;
    cfg.cacheIndexBits = 8;
    cfg.tagBits = 6;
    cfg.historyBits = 8;
    YagsPredictor predictor(cfg);
    // counterBits: choice counters + cache counters only.
    EXPECT_EQ(predictor.counterBits(), 1024u * 2 + 2 * 256 * 2);
    // storage adds tags, valid bits and the history register.
    EXPECT_EQ(predictor.storageBits(),
              1024u * 2 + 2 * 256 * (1 + 6 + 2) + 8);
}

TEST(Yags, ResetClearsCaches)
{
    YagsPredictor predictor(tinyConfig());
    for (int i = 0; i < 6; ++i)
        predictor.update(0x1000, true);
    predictor.update(0x1000, false);
    predictor.reset();
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, YagsPredictor::kChoiceBank);
    EXPECT_TRUE(detail.taken);
}

TEST(Yags, DetailInRange)
{
    YagsConfig cfg;
    cfg.choiceIndexBits = 8;
    cfg.cacheIndexBits = 6;
    cfg.tagBits = 5;
    cfg.historyBits = 6;
    YagsPredictor predictor(cfg);
    std::uint64_t pc = 0x400000;
    for (int i = 0; i < 400; ++i) {
        const PredictionDetail detail = predictor.predictDetailed(pc);
        EXPECT_TRUE(detail.usesCounter);
        EXPECT_LT(detail.counterId, predictor.directionCounters());
        predictor.update(pc, (i % 7) < 4);
        pc += 4 * ((i % 11) + 1);
    }
}

TEST(YagsDeath, HistoryWiderThanCacheIndexIsFatal)
{
    YagsConfig cfg;
    cfg.cacheIndexBits = 4;
    cfg.historyBits = 6;
    EXPECT_EXIT(YagsPredictor{cfg}, ::testing::ExitedWithCode(1),
                "cannot exceed");
}

} // namespace
} // namespace bpsim
