/** @file Tests for the gskew (skewed) predictor. */

#include <gtest/gtest.h>

#include <set>

#include "predictors/gskew.hh"

namespace bpsim
{
namespace
{

GskewConfig
smallConfig()
{
    GskewConfig cfg;
    cfg.bankIndexBits = 6;
    cfg.historyBits = 4;
    return cfg;
}

TEST(Gskew, LearnsStrongBiases)
{
    // History 0 keeps the indices fixed so interleaved training of
    // two branches converges regardless of history phase.
    GskewConfig cfg = smallConfig();
    cfg.historyBits = 0;
    GskewPredictor predictor(cfg);
    for (int i = 0; i < 30; ++i) {
        predictor.update(0x1000, true);
        predictor.update(0x2004, false);
    }
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_FALSE(predictor.predict(0x2004));
}

TEST(Gskew, BankZeroIsAddressIndexed)
{
    GskewPredictor predictor(smallConfig());
    const std::size_t before = predictor.indexFor(0, 0x1000);
    predictor.update(0x1000, true);
    predictor.update(0x1000, false);
    EXPECT_EQ(predictor.indexFor(0, 0x1000), before)
        << "the bimodal bank must ignore history";
}

TEST(Gskew, HashedBanksDependOnHistory)
{
    GskewPredictor predictor(smallConfig());
    const std::size_t b1 = predictor.indexFor(1, 0x1000);
    const std::size_t b2 = predictor.indexFor(2, 0x1000);
    predictor.update(0x1000, true);
    // After a history change at least one hashed bank must move.
    EXPECT_TRUE(predictor.indexFor(1, 0x1000) != b1 ||
                predictor.indexFor(2, 0x1000) != b2);
}

TEST(Gskew, SkewingDispersesConflicts)
{
    // The skewing property: pairs that collide in one bank should
    // rarely collide in the others.
    GskewPredictor predictor(smallConfig());
    int total_pairs = 0, double_collisions = 0;
    for (std::uint64_t a = 0; a < 40; ++a) {
        for (std::uint64_t b = a + 1; b < 40; ++b) {
            const std::uint64_t pc_a = 0x1000 + 4 * a * 67;
            const std::uint64_t pc_b = 0x1000 + 4 * b * 67;
            int collisions = 0;
            for (unsigned bank = 0; bank < 3; ++bank) {
                collisions += predictor.indexFor(bank, pc_a) ==
                              predictor.indexFor(bank, pc_b);
            }
            total_pairs += collisions >= 1;
            double_collisions += collisions >= 2;
        }
    }
    ASSERT_GT(total_pairs, 0);
    EXPECT_LT(double_collisions * 5, total_pairs)
        << "most single-bank conflicts must not repeat in other banks";
}

TEST(Gskew, MajorityOutvotesOneCorruptedBank)
{
    GskewPredictor predictor(smallConfig());
    // Train a strong taken branch.
    for (int i = 0; i < 20; ++i)
        predictor.update(0x1000, true);
    ASSERT_TRUE(predictor.predict(0x1000));
    // A colliding branch in one bank cannot flip the majority.
    // (Find a pc that collides with 0x1000 in bank 0 only.)
    std::uint64_t collider = 0;
    for (std::uint64_t cand = 0x1000 + 256; cand < 0x40000; cand += 4) {
        const bool hit0 = predictor.indexFor(0, cand) ==
                          predictor.indexFor(0, 0x1000);
        const bool hit1 = predictor.indexFor(1, cand) ==
                          predictor.indexFor(1, 0x1000);
        const bool hit2 = predictor.indexFor(2, cand) ==
                          predictor.indexFor(2, 0x1000);
        if (hit0 && !hit1 && !hit2) {
            collider = cand;
            break;
        }
    }
    ASSERT_NE(collider, 0u) << "no single-bank collider found";
    for (int i = 0; i < 4; ++i)
        predictor.update(collider, false);
    EXPECT_TRUE(predictor.predict(0x1000))
        << "two clean banks must outvote the corrupted one";
}

TEST(Gskew, PartialUpdatePreservesDissenters)
{
    GskewConfig cfg = smallConfig();
    cfg.partialUpdate = true;
    GskewPredictor predictor(cfg);
    // On a correct prediction, a dissenting bank keeps its state;
    // verify indirectly: train strongly taken, then one not-taken
    // outcome (misprediction -> all banks retrain).
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, true);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Gskew, StorageAccounting)
{
    GskewConfig cfg;
    cfg.bankIndexBits = 10;
    cfg.historyBits = 10;
    GskewPredictor predictor(cfg);
    EXPECT_EQ(predictor.counterBits(), 3u * 1024 * 2);
    EXPECT_EQ(predictor.storageBits(), 3u * 1024 * 2 + 10);
}

TEST(Gskew, ResetRestoresTakenDefault)
{
    GskewPredictor predictor(smallConfig());
    for (int i = 0; i < 20; ++i)
        predictor.update(0x1000, false);
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Gskew, DetailReportsBimodalBank)
{
    GskewPredictor predictor(smallConfig());
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_TRUE(detail.usesCounter);
    EXPECT_EQ(detail.bank, 0u);
    EXPECT_LT(detail.counterId, predictor.directionCounters());
}

} // namespace
} // namespace bpsim
