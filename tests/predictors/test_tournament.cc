/** @file Tests for the McFarling tournament predictor. */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/static_predictors.hh"
#include "predictors/tournament.hh"

namespace bpsim
{
namespace
{

TEST(Tournament, SelectsBetterComponent)
{
    // Component 0 always says taken, component 1 always not-taken;
    // on an always-not-taken branch the meta table must learn to
    // trust component 1.
    auto c0 = std::make_unique<AlwaysTakenPredictor>();
    auto c1 = std::make_unique<AlwaysNotTakenPredictor>();
    TournamentPredictor predictor(std::move(c0), std::move(c1), 6);
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_EQ(detail.bank, 1u);
}

TEST(Tournament, SwitchesWhenBehaviorChanges)
{
    auto c0 = std::make_unique<AlwaysTakenPredictor>();
    auto c1 = std::make_unique<AlwaysNotTakenPredictor>();
    TournamentPredictor predictor(std::move(c0), std::move(c1), 6);
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, true);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Tournament, MetaTrainsOnlyOnDisagreement)
{
    // Two identical components: the meta table can never train, and
    // predictions always follow the shared direction.
    auto c0 = std::make_unique<AlwaysTakenPredictor>();
    auto c1 = std::make_unique<AlwaysTakenPredictor>();
    TournamentPredictor predictor(std::move(c0), std::move(c1), 6);
    for (int i = 0; i < 20; ++i)
        predictor.update(0x1000, false);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Tournament, StandardConfigBeatsComponentsOnMixedWork)
{
    // A branch that alternates (gshare food) plus a strongly biased
    // branch that aliases it in the gshare table (bimodal food).
    PredictorPtr tournament = TournamentPredictor::makeStandard(6);
    bool alt = false;
    int wrong = 0;
    const int rounds = 400;
    for (int i = 0; i < rounds; ++i) {
        wrong += tournament->predict(0x1000) != alt;
        tournament->update(0x1000, alt);
        alt = !alt;
        wrong += tournament->predict(0x2004) != true;
        tournament->update(0x2004, true);
    }
    EXPECT_LT(wrong, rounds / 4);
}

TEST(Tournament, CounterIdsRemappedAcrossComponents)
{
    auto c0 = std::make_unique<BimodalPredictor>(4);
    auto c1 = std::make_unique<GsharePredictor>(5, 5);
    TournamentPredictor predictor(std::move(c0), std::move(c1), 4);
    EXPECT_EQ(predictor.directionCounters(), 16u + 32u);
    // Fresh meta is weakly-taken -> selects component 1; its ids
    // must be offset past component 0's range.
    const PredictionDetail detail = predictor.predictDetailed(0x1000);
    EXPECT_GE(detail.counterId, 16u);
    EXPECT_LT(detail.counterId, 48u);
}

TEST(Tournament, StorageSumsComponentsAndMeta)
{
    auto c0 = std::make_unique<BimodalPredictor>(4);
    auto c1 = std::make_unique<GsharePredictor>(5, 5);
    TournamentPredictor predictor(std::move(c0), std::move(c1), 4);
    EXPECT_EQ(predictor.counterBits(), 16u * 2 + 32u * 2 + 16u * 2);
    EXPECT_EQ(predictor.storageBits(), 16u * 2 + 32u * 2 + 16u * 2 + 5u);
}

TEST(Tournament, ResetRestoresEverything)
{
    PredictorPtr predictor = TournamentPredictor::makeStandard(5);
    for (int i = 0; i < 30; ++i)
        predictor->update(0x1000, false);
    predictor->reset();
    EXPECT_TRUE(predictor->predict(0x1000));
}

TEST(Tournament, NameListsComponents)
{
    PredictorPtr predictor = TournamentPredictor::makeStandard(6);
    const std::string name = predictor->name();
    EXPECT_NE(name.find("bimodal"), std::string::npos);
    EXPECT_NE(name.find("gshare"), std::string::npos);
    EXPECT_NE(name.find("tournament"), std::string::npos);
}

} // namespace
} // namespace bpsim
