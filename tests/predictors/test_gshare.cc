/** @file Tests for the gshare predictor. */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"

namespace bpsim
{
namespace
{

/** Trains a predictor with a repeating outcome sequence at one pc. */
void
train(BranchPredictor &predictor, std::uint64_t pc,
      const std::vector<bool> &pattern, int repetitions)
{
    for (int r = 0; r < repetitions; ++r) {
        for (bool outcome : pattern)
            predictor.update(pc, outcome);
    }
}

TEST(Gshare, ZeroHistoryEqualsBimodal)
{
    // With m = 0 the index is pure address bits: gshare degenerates
    // to a bimodal predictor.
    GsharePredictor gshare(8, 0);
    BimodalPredictor bimodal(8);
    for (std::uint64_t pc : {0x1000ULL, 0x1004ULL, 0x2040ULL}) {
        for (bool outcome : {true, false, false, true, false}) {
            EXPECT_EQ(gshare.predict(pc), bimodal.predict(pc));
            gshare.update(pc, outcome);
            bimodal.update(pc, outcome);
        }
    }
}

TEST(Gshare, LearnsAlternatingPatternBimodalCannot)
{
    // A strict alternation is 50/50 to a bimodal predictor but fully
    // determined by one bit of history.
    GsharePredictor gshare(8, 4);
    const std::uint64_t pc = 0x1000;
    bool outcome = false;
    for (int i = 0; i < 64; ++i) {
        gshare.update(pc, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 32; ++i) {
        correct += gshare.predict(pc) == outcome;
        gshare.update(pc, outcome);
        outcome = !outcome;
    }
    EXPECT_EQ(correct, 32) << "trained gshare must nail the alternation";
}

TEST(Gshare, PhtCount)
{
    EXPECT_EQ(GsharePredictor(12, 12).phtCount(), 1u);
    EXPECT_EQ(GsharePredictor(12, 10).phtCount(), 4u);
    EXPECT_EQ(GsharePredictor(12, 0).phtCount(), 4096u);
}

TEST(Gshare, IndexXorsHistoryIntoLowBits)
{
    GsharePredictor gshare(8, 4);
    const std::uint64_t pc = 0x1000;
    const std::size_t before = gshare.indexFor(pc);
    gshare.update(pc, true); // history becomes 0b1
    const std::size_t after = gshare.indexFor(pc);
    EXPECT_EQ(before ^ after, 1u);
}

TEST(Gshare, HighIndexBitsArePureAddress)
{
    // With m < n, two pcs differing in the top index bits can never
    // collide regardless of history.
    GsharePredictor gshare(8, 2);
    const std::uint64_t pc_a = 0x1000;
    const std::uint64_t pc_b = pc_a + (1ULL << (2 + 7)); // top index bit
    for (int i = 0; i < 16; ++i) {
        EXPECT_NE(gshare.indexFor(pc_a), gshare.indexFor(pc_b));
        gshare.update(pc_a, i % 3 == 0);
    }
}

TEST(Gshare, DestructiveAliasingWithFullHistory)
{
    // Construct two branches with opposite biases that share an
    // index under some history; their counter oscillates.
    GsharePredictor gshare(4, 4);
    // Same low address bits (64-byte stride aliases at 4 bits).
    const std::uint64_t pc_a = 0x1000, pc_b = 0x1040;
    EXPECT_EQ(gshare.indexFor(pc_a), gshare.indexFor(pc_b));
}

TEST(Gshare, InitializedWeaklyTaken)
{
    GsharePredictor gshare(8, 8);
    EXPECT_TRUE(gshare.predict(0x1000));
    EXPECT_TRUE(gshare.predict(0x2000));
}

TEST(Gshare, ResetClearsHistoryAndCounters)
{
    GsharePredictor gshare(8, 8);
    train(gshare, 0x1000, {false, false, false}, 10);
    gshare.reset();
    EXPECT_TRUE(gshare.predict(0x1000));
    EXPECT_EQ(gshare.indexFor(0x1000),
              GsharePredictor(8, 8).indexFor(0x1000));
}

TEST(Gshare, StorageAccounting)
{
    GsharePredictor gshare(12, 10);
    EXPECT_EQ(gshare.counterBits(), 4096u * 2);
    EXPECT_EQ(gshare.storageBits(), 4096u * 2 + 10);
    EXPECT_EQ(gshare.directionCounters(), 4096u);
}

TEST(Gshare, CostMatchesPaperLadder)
{
    // n = 12 -> 4096 counters -> 1 KB of 2-bit counters.
    GsharePredictor gshare(12, 12);
    EXPECT_EQ(gshare.counterBits() / 8, 1024u);
}

TEST(Gshare, NameIncludesConfig)
{
    EXPECT_EQ(GsharePredictor(12, 8).name(), "gshare(n=12,h=8)");
}

TEST(GshareDeath, HistoryWiderThanIndexIsFatal)
{
    EXPECT_EXIT(GsharePredictor(8, 9), ::testing::ExitedWithCode(1),
                "cannot exceed");
}

/** Parameterized: detail counter ids stay in range across configs. */
class GshareConfigTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(GshareConfigTest, DetailInRange)
{
    const auto [n, m] = GetParam();
    GsharePredictor gshare(n, m);
    std::uint64_t pc = 0x400000;
    for (int i = 0; i < 500; ++i) {
        const PredictionDetail detail = gshare.predictDetailed(pc);
        EXPECT_TRUE(detail.usesCounter);
        EXPECT_LT(detail.counterId, gshare.directionCounters());
        gshare.update(pc, i % 2 == 0);
        pc += 4 * ((i % 7) + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GshareConfigTest,
    ::testing::Values(std::make_pair(4u, 0u), std::make_pair(8u, 4u),
                      std::make_pair(10u, 10u), std::make_pair(12u, 6u),
                      std::make_pair(14u, 14u)));

} // namespace
} // namespace bpsim
