/** @file Tests for the return address stack. */

#include <gtest/gtest.h>

#include "predictors/ras.hh"

namespace bpsim
{
namespace
{

TEST(Ras, PredictsMatchingReturn)
{
    ReturnAddressStack ras(8);
    ras.pushCall(0x1000);
    EXPECT_EQ(ras.popReturn(0x1004), 0x1004u);
    EXPECT_EQ(ras.stats().correctReturns, 1u);
    EXPECT_DOUBLE_EQ(ras.stats().returnAccuracy(), 1.0);
}

TEST(Ras, NestedCallsUnwindInOrder)
{
    ReturnAddressStack ras(8);
    ras.pushCall(0x1000);
    ras.pushCall(0x2000);
    ras.pushCall(0x3000);
    EXPECT_EQ(ras.popReturn(0x3004), 0x3004u);
    EXPECT_EQ(ras.popReturn(0x2004), 0x2004u);
    EXPECT_EQ(ras.popReturn(0x1004), 0x1004u);
    EXPECT_EQ(ras.stats().correctReturns, 3u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.popReturn(0x1234), 0u);
    EXPECT_EQ(ras.stats().underflows, 1u);
    EXPECT_EQ(ras.stats().correctReturns, 0u);
}

TEST(Ras, OverflowWrapsOldestEntry)
{
    ReturnAddressStack ras(2);
    ras.pushCall(0x1000);
    ras.pushCall(0x2000);
    ras.pushCall(0x3000); // overwrites the 0x1000 frame
    EXPECT_EQ(ras.stats().overflows, 1u);
    EXPECT_EQ(ras.popReturn(0x3004), 0x3004u);
    EXPECT_EQ(ras.popReturn(0x2004), 0x2004u);
    // The oldest frame is gone; its return cannot be served.
    EXPECT_EQ(ras.popReturn(0x1004), 0u);
    EXPECT_EQ(ras.stats().underflows, 1u);
}

TEST(Ras, MispredictionCounted)
{
    ReturnAddressStack ras(4);
    ras.pushCall(0x1000);
    EXPECT_EQ(ras.popReturn(0x9999), 0x1004u);
    EXPECT_EQ(ras.stats().correctReturns, 0u);
    EXPECT_EQ(ras.stats().returns, 1u);
}

TEST(Ras, DepthTracking)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.depthInUse(), 0u);
    ras.pushCall(0x1000);
    ras.pushCall(0x2000);
    EXPECT_EQ(ras.depthInUse(), 2u);
    ras.popReturn(0x2004);
    EXPECT_EQ(ras.depthInUse(), 1u);
}

TEST(Ras, ResetEmptiesStack)
{
    ReturnAddressStack ras(4);
    ras.pushCall(0x1000);
    ras.reset();
    EXPECT_EQ(ras.depthInUse(), 0u);
    EXPECT_EQ(ras.popReturn(0x1004), 0u);
    EXPECT_EQ(ras.stats().returns, 1u) << "stats were cleared";
}

TEST(Ras, StorageAndName)
{
    ReturnAddressStack ras(16);
    EXPECT_EQ(ras.storageBits(), 16u * 32 + 4);
    EXPECT_EQ(ras.name(), "ras(depth=16)");
}

TEST(RasDeath, ZeroDepthIsFatal)
{
    EXPECT_EXIT(ReturnAddressStack{0}, ::testing::ExitedWithCode(1),
                "depth");
}

} // namespace
} // namespace bpsim
