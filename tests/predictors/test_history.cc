/** @file Tests for history registers. */

#include <gtest/gtest.h>

#include "predictors/history.hh"

namespace bpsim
{
namespace
{

TEST(HistoryRegister, ShiftsNewestIntoBitZero)
{
    HistoryRegister h(4);
    h.push(true);
    EXPECT_EQ(h.value(), 0b0001u);
    h.push(false);
    EXPECT_EQ(h.value(), 0b0010u);
    h.push(true);
    EXPECT_EQ(h.value(), 0b0101u);
}

TEST(HistoryRegister, MasksToWidth)
{
    HistoryRegister h(3);
    for (int i = 0; i < 10; ++i)
        h.push(true);
    EXPECT_EQ(h.value(), 0b111u);
}

TEST(HistoryRegister, ZeroWidthStaysZero)
{
    HistoryRegister h(0);
    h.push(true);
    h.push(true);
    EXPECT_EQ(h.value(), 0u);
}

TEST(HistoryRegister, FullWidth64)
{
    HistoryRegister h(64);
    for (int i = 0; i < 64; ++i)
        h.push(true);
    EXPECT_EQ(h.value(), ~std::uint64_t{0});
}

TEST(HistoryRegister, LowTruncates)
{
    HistoryRegister h(8);
    for (int i = 0; i < 8; ++i)
        h.push(i % 2 == 0);
    EXPECT_EQ(h.low(3), h.value() & 0b111u);
    EXPECT_EQ(h.low(8), h.value());
}

TEST(HistoryRegister, ClearZeroes)
{
    HistoryRegister h(8);
    h.push(true);
    h.clear();
    EXPECT_EQ(h.value(), 0u);
}

TEST(HistoryRegister, StorageBits)
{
    EXPECT_EQ(HistoryRegister(12).storageBits(), 12u);
}

TEST(LocalHistoryTable, IndexUsesWordAddress)
{
    LocalHistoryTable table(4, 8);
    // pcs differing only in byte-offset bits share a register.
    EXPECT_EQ(table.indexFor(0x1000), table.indexFor(0x1002));
    // pcs differing in word bits use different registers.
    EXPECT_NE(table.indexFor(0x1000), table.indexFor(0x1004));
}

TEST(LocalHistoryTable, PerAddressIsolation)
{
    LocalHistoryTable table(4, 8);
    table.push(0x1000, true);
    table.push(0x1000, true);
    table.push(0x1004, false);
    EXPECT_EQ(table.value(0x1000), 0b11u);
    EXPECT_EQ(table.value(0x1004), 0b0u);
}

TEST(LocalHistoryTable, AliasedAddressesShare)
{
    LocalHistoryTable table(2, 4);
    // 2-bit index: pcs 16 words apart alias.
    table.push(0x1000, true);
    EXPECT_EQ(table.value(0x1000 + (4 << 2)), 0b1u);
}

TEST(LocalHistoryTable, ClearZeroes)
{
    LocalHistoryTable table(4, 8);
    table.push(0x1000, true);
    table.clear();
    EXPECT_EQ(table.value(0x1000), 0u);
}

TEST(LocalHistoryTable, StorageBits)
{
    LocalHistoryTable table(10, 6);
    EXPECT_EQ(table.storageBits(), 1024u * 6);
}

TEST(PcIndexBits, DropsByteOffset)
{
    EXPECT_EQ(pcIndexBits(0x1000, 4), (0x1000u >> 2) & 0xf);
    EXPECT_EQ(pcIndexBits(0x1003, 4), pcIndexBits(0x1000, 4));
    EXPECT_EQ(pcIndexBits(0x1004, 4), pcIndexBits(0x1000, 4) + 1);
}

} // namespace
} // namespace bpsim
