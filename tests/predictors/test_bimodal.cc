/** @file Tests for the bimodal (Smith) predictor. */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"

namespace bpsim
{
namespace
{

TEST(Bimodal, StartsWeaklyTaken)
{
    BimodalPredictor predictor(4);
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Bimodal, LearnsNotTakenBias)
{
    BimodalPredictor predictor(4);
    predictor.update(0x1000, false);
    predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
}

TEST(Bimodal, PerAddressIsolationWithinTable)
{
    BimodalPredictor predictor(8);
    for (int i = 0; i < 4; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
    EXPECT_TRUE(predictor.predict(0x1004)) << "other slot untouched";
}

TEST(Bimodal, AliasedAddressesShareCounter)
{
    BimodalPredictor predictor(4);
    // 4 index bits of word address: pcs 16 words (64 bytes) apart
    // alias onto the same counter.
    for (int i = 0; i < 4; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000 + 64));
    EXPECT_EQ(predictor.indexFor(0x1000), predictor.indexFor(0x1040));
}

TEST(Bimodal, TracksBiasFlip)
{
    BimodalPredictor predictor(4);
    for (int i = 0; i < 10; ++i)
        predictor.update(0x1000, true);
    EXPECT_TRUE(predictor.predict(0x1000));
    for (int i = 0; i < 3; ++i)
        predictor.update(0x1000, false);
    EXPECT_FALSE(predictor.predict(0x1000));
}

TEST(Bimodal, DetailReportsCounter)
{
    BimodalPredictor predictor(6);
    const PredictionDetail detail = predictor.predictDetailed(0x1234);
    EXPECT_TRUE(detail.usesCounter);
    EXPECT_EQ(detail.bank, 0u);
    EXPECT_EQ(detail.counterId, predictor.indexFor(0x1234));
    EXPECT_LT(detail.counterId, predictor.directionCounters());
}

TEST(Bimodal, ResetRestoresInitialState)
{
    BimodalPredictor predictor(4);
    for (int i = 0; i < 4; ++i)
        predictor.update(0x1000, false);
    predictor.reset();
    EXPECT_TRUE(predictor.predict(0x1000));
}

TEST(Bimodal, StorageAccounting)
{
    BimodalPredictor predictor(12);
    EXPECT_EQ(predictor.storageBits(), 4096u * 2);
    EXPECT_EQ(predictor.counterBits(), 4096u * 2);
    EXPECT_EQ(predictor.directionCounters(), 4096u);
}

TEST(Bimodal, NameIncludesConfig)
{
    EXPECT_EQ(BimodalPredictor(12).name(), "bimodal(n=12)");
}

TEST(Bimodal, PredictIsConstStable)
{
    const BimodalPredictor predictor(4);
    const bool first = predictor.predict(0x1000);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(predictor.predict(0x1000), first);
}

} // namespace
} // namespace bpsim
