/** @file Tests for the experiment campaign engine and its emitters. */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

/** A mixed-behaviour trace: per-site bias plus noise, enough sites
 *  to make different predictors disagree. */
MemoryTrace
mixedTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t site = rng.nextBounded(300);
        const bool biased_taken = site % 3 != 0;
        const bool outcome =
            rng.nextBool(0.1) ? !biased_taken : biased_taken;
        trace.append(cond(0x400000 + 4 * site, outcome));
    }
    return trace;
}

std::vector<BenchmarkTrace>
threeBenchmarks(const MemoryTrace &a, const MemoryTrace &b,
                const MemoryTrace &c)
{
    return {{"alpha", &a}, {"beta", &b}, {"gamma", &c}};
}

TEST(Campaign, GridExpansionIsConfigMajor)
{
    const MemoryTrace trace = mixedTrace(100, 1);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bimodal:n=6"},
                     threeBenchmarks(trace, trace, trace));
    ASSERT_EQ(campaign.jobCount(), 6u);
    const auto &jobs = campaign.jobs();
    EXPECT_EQ(jobs[0].configText, "gshare:n=6");
    EXPECT_EQ(jobs[0].benchmark, "alpha");
    EXPECT_EQ(jobs[2].configText, "gshare:n=6");
    EXPECT_EQ(jobs[2].benchmark, "gamma");
    EXPECT_EQ(jobs[3].configText, "bimodal:n=6");
    EXPECT_EQ(jobs[3].benchmark, "alpha");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);
}

TEST(Campaign, SerialAndParallelAreBitIdentical)
{
    const MemoryTrace a = mixedTrace(20'000, 11);
    const MemoryTrace b = mixedTrace(20'000, 22);
    const MemoryTrace c = mixedTrace(20'000, 33);
    Campaign campaign;
    campaign.addGrid({"gshare:n=8", "bimode:d=7", "bimodal:n=7",
                      "perceptron:n=4,h=8"},
                     threeBenchmarks(a, b, c));

    const auto serial = campaign.run(1);
    const auto parallel = campaign.run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].index, parallel[i].index);
        EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
        EXPECT_EQ(serial[i].configText, parallel[i].configText);
        EXPECT_EQ(serial[i].error, parallel[i].error);
        EXPECT_EQ(serial[i].result.predictorName,
                  parallel[i].result.predictorName);
        EXPECT_EQ(serial[i].result.branches,
                  parallel[i].result.branches);
        EXPECT_EQ(serial[i].result.mispredictions,
                  parallel[i].result.mispredictions);
        EXPECT_EQ(serial[i].result.takenBranches,
                  parallel[i].result.takenBranches);
        EXPECT_EQ(serial[i].result.counterBits,
                  parallel[i].result.counterBits);
    }
}

TEST(Campaign, ResultsCarryBenchmarkAndConfigIdentity)
{
    const MemoryTrace trace = mixedTrace(1'000, 7);
    Campaign campaign;
    campaign.addJob("gshare:n=6", {"alpha", &trace});
    const auto results = campaign.run(1);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok());
    EXPECT_EQ(results[0].result.benchmark, "alpha");
    EXPECT_EQ(results[0].result.configText, "gshare:n=6");
    EXPECT_EQ(results[0].result.predictorName, "gshare(n=6,h=6)");
}

TEST(Campaign, BadConfigIsAPerJobError)
{
    const MemoryTrace trace = mixedTrace(1'000, 5);
    Campaign campaign;
    campaign.addGrid({"bogus:", "gshare:n=", "gshare:n=6"},
                     {{"alpha", &trace}});
    const auto results = campaign.run(2);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("unknown predictor kind"),
              std::string::npos);
    EXPECT_FALSE(results[1].ok());
    EXPECT_NE(results[1].error.find("not a number"),
              std::string::npos);
    // The good job still ran to completion.
    ASSERT_TRUE(results[2].ok());
    EXPECT_GT(results[2].result.branches, 0u);
}

TEST(Campaign, MissingTraceIsAPerJobError)
{
    Campaign campaign;
    campaign.addJob("gshare:n=6", {"alpha", nullptr});
    const auto results = campaign.run(1);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("no trace"), std::string::npos);
}

TEST(Campaign, ProgressReportsEveryJobExactlyOnce)
{
    const MemoryTrace trace = mixedTrace(2'000, 3);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bimodal:n=6", "bimode:d=5"},
                     threeBenchmarks(trace, trace, trace));
    std::set<std::size_t> seen;
    std::size_t final_completed = 0;
    const auto results = campaign.run(
        4, [&](const CampaignProgress &progress) {
            // Serialized under the campaign lock: no races here.
            seen.insert(progress.latest->index);
            final_completed = progress.completed;
            EXPECT_EQ(progress.total, 9u);
        });
    EXPECT_EQ(seen.size(), 9u);
    EXPECT_EQ(final_completed, 9u);
    EXPECT_EQ(results.size(), 9u);
}

TEST(Campaign, ThrowingProgressCallbackDoesNotKillTheRun)
{
    // An exception escaping into a worker thread would std::terminate
    // the whole process; the campaign must absorb it, disable the
    // hook, and still return every result.
    const MemoryTrace trace = mixedTrace(2'000, 17);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bimodal:n=6", "bimode:d=5"},
                     threeBenchmarks(trace, trace, trace));
    const auto results = campaign.run(4, [](const CampaignProgress &) {
        throw std::runtime_error("broken hook");
    });
    ASSERT_EQ(results.size(), 9u);
    for (const JobResult &result : results)
        EXPECT_TRUE(result.ok()) << result.error;
}

TEST(Campaign, WarmTraceStoreRunIsByteIdenticalJson)
{
    // The trace-store acceptance gate in miniature: a campaign over a
    // cold store and the same campaign over the warmed store must
    // produce byte-identical JSON.
    const std::string dir = ::testing::TempDir() + "campaign_warm";
    std::filesystem::remove_all(dir);

    WorkloadSpec tiny;
    tiny.name = "tiny";
    tiny.staticBranches = 50;
    tiny.dynamicBranches = 5'000;
    tiny.seed = 21;

    const auto run_once = [&](std::size_t &generated) {
        TraceCache cache(dir);
        Campaign campaign;
        campaign.addGrid({"gshare:n=7", "bimode:d=6"},
                         resolveTraces(cache, {tiny}));
        const auto results = campaign.run(2);
        generated = cache.stats().generated;
        std::ostringstream os;
        writeResultsJson(os, results);
        return os.str();
    };

    std::size_t cold_generated = 0, warm_generated = 0;
    const std::string cold = run_once(cold_generated);
    const std::string warm = run_once(warm_generated);
    EXPECT_EQ(cold_generated, 1u);
    EXPECT_EQ(warm_generated, 0u);
    EXPECT_EQ(cold, warm);
    std::filesystem::remove_all(dir);
}

TEST(Campaign, ResolveTracesGeneratesOnceAndShares)
{
    WorkloadSpec tiny;
    tiny.name = "tiny";
    tiny.staticBranches = 50;
    tiny.dynamicBranches = 5'000;
    TraceCache cache;
    const auto first = resolveTraces(cache, {tiny});
    const auto second = resolveTraces(cache, {tiny});
    EXPECT_EQ(cache.generatedCount(), 1u);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].trace, second[0].trace);
    EXPECT_EQ(first[0].name, "tiny");
}

TEST(Campaign, WorkerCountDefaults)
{
    setDefaultWorkerCount(3);
    EXPECT_EQ(defaultWorkerCount(), 3u);
    setDefaultWorkerCount(0);
    EXPECT_GE(defaultWorkerCount(), 1u);
}

TEST(CampaignEmitters, JsonCarriesResultsAndErrors)
{
    const MemoryTrace trace = mixedTrace(1'000, 9);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bogus:"}, {{"alpha", &trace}});
    const auto results = campaign.run(1);
    std::ostringstream os;
    writeResultsJson(os, results);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\":\"alpha\""), std::string::npos);
    EXPECT_NE(json.find("\"config\":\"gshare:n=6\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mispredictionRate\":"), std::string::npos);
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(json.find("unknown predictor kind 'bogus'"),
              std::string::npos);
}

TEST(CampaignEmitters, TableHasOneRowPerJob)
{
    const MemoryTrace trace = mixedTrace(1'000, 13);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bogus:"}, {{"alpha", &trace}});
    const auto results = campaign.run(1);
    const TextTable table = resultsTable(results);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(CampaignEmitters, TimingColumnIsOptIn)
{
    const MemoryTrace trace = mixedTrace(1'000, 13);
    Campaign campaign;
    campaign.addGrid({"gshare:n=6", "bogus:"}, {{"alpha", &trace}});
    const auto results = campaign.run(1);

    std::ostringstream plain, timed;
    resultsTable(results).print(plain);
    resultsTable(results, /*withTiming=*/true).print(timed);
    EXPECT_EQ(plain.str().find("Mbr/s"), std::string::npos);
    EXPECT_NE(timed.str().find("Mbr/s"), std::string::npos);
    // The failed job renders a placeholder, not a rate.
    EXPECT_NE(timed.str().find("--"), std::string::npos);
}

} // namespace
} // namespace bpsim
