/** @file Tests for the incremental campaign scheduler. */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/scheduler.hh"
#include "trace/packed_trace.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

MemoryTrace
mixedTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t site = rng.nextBounded(300);
        const bool biased_taken = site % 3 != 0;
        const bool outcome =
            rng.nextBool(0.1) ? !biased_taken : biased_taken;
        trace.append(cond(0x400000 + 4 * site, outcome));
    }
    return trace;
}

Job
makeJob(std::size_t index, const std::string &config,
        const std::string &benchmark, const MemoryTrace &trace,
        const PackedTrace *packed = nullptr)
{
    Job job;
    job.index = index;
    job.configText = config;
    job.benchmark = benchmark;
    job.trace = &trace;
    job.packed = packed;
    return job;
}

/** Thread-safe result sink keyed by ticket. */
struct Sink
{
    std::mutex mu;
    std::map<CampaignScheduler::Ticket, JobResult> results;

    CampaignScheduler::CompletionFn fn()
    {
        return [this](CampaignScheduler::Ticket ticket,
                      JobResult result) {
            std::lock_guard<std::mutex> lock(mu);
            results.emplace(ticket, std::move(result));
        };
    }
};

TEST(CampaignScheduler, SubmitRunsJobAndFiresCallback)
{
    const MemoryTrace trace = mixedTrace(5'000, 7);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{2, true, 0, false});
    Sink sink;
    const auto ticket = scheduler.submit(
        makeJob(0, "gshare:n=8", "alpha", trace), sink.fn());
    ASSERT_TRUE(ticket.has_value());
    scheduler.drain();
    ASSERT_EQ(sink.results.size(), 1u);
    const JobResult &result = sink.results.at(*ticket);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.benchmark, "alpha");
    EXPECT_EQ(result.result.branches, 5'000u);
}

TEST(CampaignScheduler, TicketsAreUniqueAndMonotonic)
{
    const MemoryTrace trace = mixedTrace(500, 3);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{2, true, 0, false});
    Sink sink;
    std::vector<CampaignScheduler::Ticket> tickets;
    for (int i = 0; i < 20; ++i) {
        const auto ticket = scheduler.submit(
            makeJob(i, "bimodal:n=6", "b", trace), sink.fn());
        ASSERT_TRUE(ticket.has_value());
        if (!tickets.empty()) {
            EXPECT_GT(*ticket, tickets.back());
        }
        tickets.push_back(*ticket);
    }
    scheduler.drain();
    EXPECT_EQ(sink.results.size(), 20u);
}

TEST(CampaignScheduler, ConfigErrorCompletesWithJobError)
{
    const MemoryTrace trace = mixedTrace(500, 3);
    CampaignScheduler scheduler;
    Sink sink;
    const auto ticket = scheduler.submit(
        makeJob(0, "no-such-predictor:x=1", "b", trace), sink.fn());
    ASSERT_TRUE(ticket.has_value());
    scheduler.drain();
    const JobResult &result = sink.results.at(*ticket);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.error.empty());
}

TEST(CampaignScheduler, ThrowingCallbackFailsOnlyItsOwnTicket)
{
    const MemoryTrace trace = mixedTrace(2'000, 5);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{3, true, 0, false});

    std::atomic<int> delivered{0};
    // One poisoned submission among many healthy ones: the throw
    // must be contained to its own ticket, and the pool must keep
    // delivering everything else.
    for (int i = 0; i < 10; ++i) {
        const auto ticket = scheduler.submit(
            makeJob(i, "gshare:n=7", "b", trace),
            [&delivered, i](CampaignScheduler::Ticket, JobResult) {
                if (i == 4)
                    throw std::runtime_error("client stream died");
                ++delivered;
            });
        ASSERT_TRUE(ticket.has_value());
    }
    scheduler.drain();
    EXPECT_EQ(delivered.load(), 9);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.completed, 10u);
    EXPECT_EQ(stats.callbackExceptions, 1u);

    // The scheduler is still fully usable afterwards.
    Sink sink;
    const auto ticket = scheduler.submit(
        makeJob(10, "bimodal:n=6", "b", trace), sink.fn());
    ASSERT_TRUE(ticket.has_value());
    scheduler.drain();
    EXPECT_TRUE(sink.results.at(*ticket).ok());
}

TEST(CampaignScheduler, TrySubmitRefusesWhenQueueIsFull)
{
    const MemoryTrace trace = mixedTrace(20'000, 9);
    // One worker, paused: nothing dispatches, so the queue fills.
    CampaignScheduler scheduler(
        CampaignScheduler::Options{1, true, 3, true});
    Sink sink;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(scheduler
                        .trySubmit(makeJob(i, "gshare:n=6", "b", trace),
                                   sink.fn())
                        .has_value());
    }
    EXPECT_FALSE(scheduler
                     .trySubmit(makeJob(3, "gshare:n=6", "b", trace),
                                sink.fn())
                     .has_value());
    EXPECT_EQ(scheduler.pendingJobs(), 3u);
    scheduler.drain();
    EXPECT_EQ(sink.results.size(), 3u);
}

TEST(CampaignScheduler, TrySubmitAllIsAllOrNothing)
{
    const MemoryTrace trace = mixedTrace(1'000, 9);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{1, true, 4, true});
    Sink sink;

    std::vector<Job> batch;
    for (int i = 0; i < 3; ++i)
        batch.push_back(makeJob(i, "gshare:n=6", "b", trace));

    const auto first = scheduler.trySubmitAll(batch, sink.fn());
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->size(), 3u);

    // A second batch of three would overflow maxPending = 4: nothing
    // of it may be admitted.
    const auto second = scheduler.trySubmitAll(batch, sink.fn());
    EXPECT_FALSE(second.has_value());
    EXPECT_EQ(scheduler.pendingJobs(), 3u);

    scheduler.drain();
    EXPECT_EQ(sink.results.size(), 3u);
}

TEST(CampaignScheduler, CancelRemovesPendingJob)
{
    const MemoryTrace trace = mixedTrace(1'000, 13);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{1, true, 0, true});
    Sink sink;
    const auto keep = scheduler.submit(
        makeJob(0, "gshare:n=6", "b", trace), sink.fn());
    const auto drop = scheduler.submit(
        makeJob(1, "gshare:n=6", "b", trace), sink.fn());
    ASSERT_TRUE(keep && drop);

    EXPECT_TRUE(scheduler.cancel(*drop));
    EXPECT_FALSE(scheduler.cancel(*drop));          // already gone
    EXPECT_FALSE(scheduler.cancel(999'999));        // unknown

    scheduler.drain();
    EXPECT_EQ(sink.results.size(), 1u);
    EXPECT_EQ(sink.results.count(*keep), 1u);
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(CampaignScheduler, ShutdownRefusesNewWork)
{
    const MemoryTrace trace = mixedTrace(500, 17);
    CampaignScheduler scheduler;
    scheduler.shutdown();
    Sink sink;
    EXPECT_FALSE(scheduler
                     .submit(makeJob(0, "gshare:n=6", "b", trace),
                             sink.fn())
                     .has_value());
    EXPECT_FALSE(scheduler
                     .trySubmit(makeJob(0, "gshare:n=6", "b", trace),
                                sink.fn())
                     .has_value());
}

TEST(CampaignScheduler, PausedSubmissionsFuseAcrossSubmitters)
{
    // Two "clients" each submit half of a fusable sweep into a
    // paused scheduler; on resume the dispatch sweep banks jobs from
    // both, and every result is bit-identical to solo unfused runs.
    const MemoryTrace trace = mixedTrace(30'000, 21);
    const PackedTrace packed(trace);
    const std::vector<std::string> configs = {
        "gshare:n=7", "gshare:n=8", "gshare:n=9", "gshare:n=10"};

    for (const unsigned workers : {1u, 4u}) {
        CampaignScheduler scheduler(
            CampaignScheduler::Options{workers, true, 0, true});
        Sink clientA;
        Sink clientB;
        std::map<CampaignScheduler::Ticket, std::string> configOf;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            Sink &sink = (i % 2 == 0) ? clientA : clientB;
            const auto ticket = scheduler.submit(
                makeJob(i, configs[i], "bench", trace, &packed),
                sink.fn());
            ASSERT_TRUE(ticket.has_value());
            configOf[*ticket] = configs[i];
        }
        scheduler.drain();
        ASSERT_EQ(clientA.results.size(), 2u);
        ASSERT_EQ(clientB.results.size(), 2u);
        const auto stats = scheduler.stats();
        EXPECT_GE(stats.fusedBanks, 1u) << "workers=" << workers;

        // Reference: each config alone, classic per-job path.
        for (const auto &entry : configOf) {
            const auto &resultsOf = clientA.results.count(entry.first)
                                        ? clientA.results
                                        : clientB.results;
            const JobResult &fused = resultsOf.at(entry.first);
            ASSERT_TRUE(fused.ok()) << fused.error;
            const JobResult solo = runJob(
                makeJob(0, entry.second, "bench", trace, nullptr));
            ASSERT_TRUE(solo.ok());
            EXPECT_EQ(fused.result.mispredictions,
                      solo.result.mispredictions)
                << entry.second << " workers=" << workers;
            EXPECT_EQ(fused.result.branches, solo.result.branches);
            EXPECT_EQ(fused.result.takenBranches,
                      solo.result.takenBranches);
        }
    }
}

TEST(CampaignScheduler, PauseHoldsWorkAndResumeReleasesIt)
{
    const MemoryTrace trace = mixedTrace(1'000, 23);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{2, true, 0, true});
    Sink sink;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(scheduler
                        .submit(makeJob(i, "bimodal:n=6", "b", trace),
                                sink.fn())
                        .has_value());
    }
    EXPECT_EQ(scheduler.pendingJobs(), 4u);
    scheduler.resume();
    scheduler.drain();
    EXPECT_EQ(sink.results.size(), 4u);
    EXPECT_EQ(scheduler.pendingJobs(), 0u);
}

TEST(CampaignScheduler, ConcurrentShutdownCallsAreSafe)
{
    // shutdown() is documented idempotent; racing callers must not
    // double-join the pool (which throws std::system_error). Every
    // caller returns only once the pool is fully joined.
    const MemoryTrace trace = mixedTrace(2'000, 31);
    for (int round = 0; round < 8; ++round) {
        CampaignScheduler scheduler(
            CampaignScheduler::Options{2, true, 0, false});
        Sink sink;
        for (int i = 0; i < 8; ++i) {
            ASSERT_TRUE(scheduler
                            .submit(makeJob(i, "gshare:n=6", "b",
                                            trace),
                                    sink.fn())
                            .has_value());
        }
        std::vector<std::thread> callers;
        for (int t = 0; t < 4; ++t) {
            callers.emplace_back(
                [&scheduler] { scheduler.shutdown(); });
        }
        for (std::thread &caller : callers)
            caller.join();
        EXPECT_EQ(sink.results.size(), 8u);
    }
}

TEST(CampaignScheduler, WideFusionSweepSurvivesBatchGrowth)
{
    // Regression: the dispatch-time fusion sweep used to compare
    // against a reference into the batch vector it was growing; the
    // first reallocation dangled it. Enough fusable lanes to force
    // several reallocations must still bank correctly and produce
    // solo-identical results.
    const MemoryTrace trace = mixedTrace(20'000, 37);
    const PackedTrace packed(trace);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{1, true, 0, true});
    Sink sink;
    std::map<CampaignScheduler::Ticket, std::string> configOf;
    for (int n = 4; n <= 25; ++n) {
        const std::string config = "gshare:n=" + std::to_string(n);
        const auto ticket = scheduler.submit(
            makeJob(configOf.size(), config, "bench", trace, &packed),
            sink.fn());
        ASSERT_TRUE(ticket.has_value());
        configOf[*ticket] = config;
    }
    scheduler.resume();
    scheduler.drain();
    ASSERT_EQ(sink.results.size(), configOf.size());
    EXPECT_GE(scheduler.stats().fusedBanks, 1u);
    for (const auto &entry : configOf) {
        const JobResult &fused = sink.results.at(entry.first);
        ASSERT_TRUE(fused.ok()) << fused.error;
        const JobResult solo = runJob(
            makeJob(0, entry.second, "bench", trace, nullptr));
        ASSERT_TRUE(solo.ok());
        EXPECT_EQ(fused.result.mispredictions,
                  solo.result.mispredictions)
            << entry.second;
        EXPECT_EQ(fused.result.branches, solo.result.branches);
    }
}

TEST(CampaignScheduler, StatsCountersAreConsistent)
{
    const MemoryTrace trace = mixedTrace(1'000, 29);
    CampaignScheduler scheduler(
        CampaignScheduler::Options{2, true, 0, false});
    Sink sink;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(scheduler
                        .submit(makeJob(i, "gshare:n=6", "b", trace),
                                sink.fn())
                        .has_value());
    }
    scheduler.drain();
    const auto stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.completed, 6u);
    EXPECT_EQ(stats.cancelled, 0u);
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_EQ(stats.inFlight, 0u);
}

} // namespace
} // namespace bpsim
