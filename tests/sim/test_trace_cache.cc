/** @file Tests for the benchmark trace cache. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/trace_cache.hh"
#include "trace/trace_store.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
tinySpec(const std::string &name, std::uint64_t dynamic)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 100;
    spec.dynamicBranches = dynamic;
    spec.seed = 3;
    return spec;
}

TEST(TraceCache, GeneratesOnFirstUse)
{
    TraceCache cache;
    EXPECT_EQ(cache.generatedCount(), 0u);
    const MemoryTrace &trace = cache.traceFor(tinySpec("a", 5000));
    EXPECT_EQ(trace.size(), 5000u);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCache, ReturnsSameObjectOnRepeat)
{
    TraceCache cache;
    const MemoryTrace &first = cache.traceFor(tinySpec("a", 5000));
    const MemoryTrace &second = cache.traceFor(tinySpec("a", 5000));
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCache, DistinctBenchmarksDistinctTraces)
{
    TraceCache cache;
    const MemoryTrace &a = cache.traceFor(tinySpec("a", 5000));
    const MemoryTrace &b = cache.traceFor(tinySpec("b", 4000));
    EXPECT_NE(&a, &b);
    EXPECT_EQ(b.size(), 4000u);
    EXPECT_EQ(cache.generatedCount(), 2u);
}

TEST(TraceCacheDeath, ConflictingSpecsPanic)
{
    TraceCache cache;
    cache.traceFor(tinySpec("a", 5000));
    EXPECT_DEATH(cache.traceFor(tinySpec("a", 6000)),
                 "different dynamic counts");
}

/** A per-test store directory that cleans up after itself. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string &name)
        : dirPath(::testing::TempDir() + name)
    {
        std::filesystem::remove_all(dirPath);
    }

    ~TempStoreDir() { std::filesystem::remove_all(dirPath); }

    const std::string &path() const { return dirPath; }

  private:
    std::string dirPath;
};

TEST(TraceCache, EmptyDirectoryMeansMemoryOnly)
{
    TraceCache cache{std::string()};
    EXPECT_FALSE(cache.persistent());
    EXPECT_EQ(cache.traceFor(tinySpec("a", 3000)).size(), 3000u);
}

TEST(TraceCache, FingerprintTracksTheWholeSpec)
{
    const WorkloadSpec base = tinySpec("a", 5000);
    WorkloadSpec reseeded = base;
    reseeded.seed = 4;
    WorkloadSpec resized = base;
    resized.dynamicBranches = 6000;
    EXPECT_EQ(workloadTraceFingerprint(base),
              workloadTraceFingerprint(tinySpec("a", 5000)));
    EXPECT_NE(workloadTraceFingerprint(base),
              workloadTraceFingerprint(reseeded));
    EXPECT_NE(workloadTraceFingerprint(base),
              workloadTraceFingerprint(resized));
}

TEST(TraceCache, WarmRunLoadsBitIdenticalTracesWithoutGenerating)
{
    TempStoreDir dir("cache_warm");
    const WorkloadSpec spec = tinySpec("a", 5000);

    // Cold: generate, pack, and persist both forms.
    TraceCache cold(dir.path());
    ASSERT_TRUE(cold.persistent());
    const MemoryTrace &generated = cold.traceFor(spec);
    const PackedTrace &built = cold.packedFor(spec);
    EXPECT_EQ(cold.stats().generated, 1u);
    EXPECT_EQ(cold.stats().packedBuilt, 1u);

    // Warm: a fresh cache over the same directory must serve both
    // forms from disk, bit-identical, generating nothing.
    TraceCache warm(dir.path());
    const MemoryTrace &loaded = warm.traceFor(spec);
    EXPECT_EQ(warm.stats().generated, 0u);
    EXPECT_EQ(warm.stats().traceLoads, 1u);
    ASSERT_EQ(loaded.size(), generated.size());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        ASSERT_EQ(loaded[i], generated[i]) << "record " << i;

    const PackedTrace &packed = warm.packedFor(spec);
    EXPECT_EQ(warm.stats().packedLoads, 1u);
    EXPECT_EQ(warm.stats().packedBuilt, 0u);
    ASSERT_EQ(packed.size(), built.size());
    EXPECT_EQ(packed.takenCount(), built.takenCount());
    for (std::size_t i = 0; i < packed.size(); ++i) {
        ASSERT_EQ(packed.pc(i), built.pc(i)) << "pc " << i;
        ASSERT_EQ(packed.taken(i), built.taken(i)) << "bit " << i;
    }
}

TEST(TraceCache, PackedLoadsStraightFromStoreWithoutFullTrace)
{
    TempStoreDir dir("cache_packed_only");
    const WorkloadSpec spec = tinySpec("a", 4000);
    {
        TraceCache cold(dir.path());
        cold.packedFor(spec);
    }
    // A warm cache asked only for the packed form must not touch
    // (or regenerate) the full trace.
    TraceCache warm(dir.path());
    const PackedTrace &packed = warm.packedFor(spec);
    EXPECT_EQ(packed.size(), 4000u);
    EXPECT_EQ(warm.stats().generated, 0u);
    EXPECT_EQ(warm.stats().traceLoads, 0u);
    EXPECT_EQ(warm.stats().packedLoads, 1u);
    EXPECT_EQ(warm.generatedCount(), 0u);
}

TEST(TraceCache, CorruptedStoreFilesRegenerateAndRewrite)
{
    TempStoreDir dir("cache_corrupt");
    const WorkloadSpec spec = tinySpec("a", 5000);
    MemoryTrace pristine;
    {
        TraceCache cold(dir.path());
        const MemoryTrace &trace = cold.traceFor(spec);
        for (std::size_t i = 0; i < trace.size(); ++i)
            pristine.append(trace[i]);
        cold.packedFor(spec);
    }

    // Flip one payload byte in each cached file.
    const TraceStore store(dir.path());
    const std::uint64_t fp = workloadTraceFingerprint(spec);
    for (const char *ext : {".bbt1", ".pbt1"}) {
        const std::string path = store.pathFor(spec.name, fp, ext);
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f) << path;
        char byte;
        f.seekg(80);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x04);
        f.seekp(80);
        f.write(&byte, 1);
    }

    // The corruption must be absorbed: regenerate, serve the right
    // data, count the rejections, and rewrite the files.
    TraceCache recovering(dir.path());
    const MemoryTrace &regenerated = recovering.traceFor(spec);
    recovering.packedFor(spec);
    EXPECT_EQ(recovering.stats().generated, 1u);
    EXPECT_GE(recovering.stats().invalidFiles, 1u);
    ASSERT_EQ(regenerated.size(), pristine.size());
    for (std::size_t i = 0; i < regenerated.size(); ++i)
        ASSERT_EQ(regenerated[i], pristine[i]) << "record " << i;

    TraceCache healed(dir.path());
    healed.traceFor(spec);
    healed.packedFor(spec);
    EXPECT_EQ(healed.stats().generated, 0u);
    EXPECT_EQ(healed.stats().invalidFiles, 0u);
    EXPECT_EQ(healed.stats().traceLoads, 1u);
    EXPECT_EQ(healed.stats().packedLoads, 1u);
}

TEST(TraceCache, WritesSpecSidecarForDebugging)
{
    TempStoreDir dir("cache_sidecar");
    const WorkloadSpec spec = tinySpec("a", 3000);
    TraceCache cache(dir.path());
    cache.traceFor(spec);
    const TraceStore store(dir.path());
    const std::string path = store.pathFor(
        spec.name, workloadTraceFingerprint(spec), ".spec");
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("workload spec"), std::string::npos);
}

} // namespace
} // namespace bpsim
