/** @file Tests for the benchmark trace cache. */

#include <gtest/gtest.h>

#include "sim/trace_cache.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
tinySpec(const std::string &name, std::uint64_t dynamic)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 100;
    spec.dynamicBranches = dynamic;
    spec.seed = 3;
    return spec;
}

TEST(TraceCache, GeneratesOnFirstUse)
{
    TraceCache cache;
    EXPECT_EQ(cache.generatedCount(), 0u);
    const MemoryTrace &trace = cache.traceFor(tinySpec("a", 5000));
    EXPECT_EQ(trace.size(), 5000u);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCache, ReturnsSameObjectOnRepeat)
{
    TraceCache cache;
    const MemoryTrace &first = cache.traceFor(tinySpec("a", 5000));
    const MemoryTrace &second = cache.traceFor(tinySpec("a", 5000));
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(cache.generatedCount(), 1u);
}

TEST(TraceCache, DistinctBenchmarksDistinctTraces)
{
    TraceCache cache;
    const MemoryTrace &a = cache.traceFor(tinySpec("a", 5000));
    const MemoryTrace &b = cache.traceFor(tinySpec("b", 4000));
    EXPECT_NE(&a, &b);
    EXPECT_EQ(b.size(), 4000u);
    EXPECT_EQ(cache.generatedCount(), 2u);
}

TEST(TraceCacheDeath, ConflictingSpecsPanic)
{
    TraceCache cache;
    cache.traceFor(tinySpec("a", 5000));
    EXPECT_DEATH(cache.traceFor(tinySpec("a", 6000)),
                 "different dynamic counts");
}

} // namespace
} // namespace bpsim
