/** @file Tests for the first-order pipeline impact model. */

#include <gtest/gtest.h>

#include "sim/pipeline_model.hh"

namespace bpsim
{
namespace
{

TEST(PipelineModel, PerfectPredictionGivesBaseCpi)
{
    PipelineModel model;
    EXPECT_DOUBLE_EQ(model.cpiAt(0.0), model.baseCpi);
}

TEST(PipelineModel, CpiGrowsLinearly)
{
    PipelineModel model;
    model.baseCpi = 1.0;
    model.branchFraction = 0.2;
    model.mispredictPenaltyCycles = 10.0;
    // 5% misprediction: 1.0 + 0.2 * 0.05 * 10 = 1.1.
    EXPECT_DOUBLE_EQ(model.cpiAt(5.0), 1.1);
    EXPECT_DOUBLE_EQ(model.cpiAt(10.0), 1.2);
}

TEST(PipelineModel, IpcIsReciprocal)
{
    PipelineModel model;
    EXPECT_DOUBLE_EQ(model.ipcAt(4.0), 1.0 / model.cpiAt(4.0));
}

TEST(PipelineModel, SpeedupSigns)
{
    PipelineModel model;
    EXPECT_GT(model.speedupPercent(10.0, 5.0), 0.0);
    EXPECT_LT(model.speedupPercent(5.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(model.speedupPercent(7.0, 7.0), 0.0);
}

TEST(PipelineModel, KnownSpeedupValue)
{
    PipelineModel model;
    model.baseCpi = 1.0;
    model.branchFraction = 0.2;
    model.mispredictPenaltyCycles = 10.0;
    // 10% -> CPI 1.2; 5% -> CPI 1.1; speedup = 1.2/1.1 - 1.
    EXPECT_NEAR(model.speedupPercent(10.0, 5.0),
                (1.2 / 1.1 - 1.0) * 100.0, 1e-9);
}

TEST(PipelineModelDeath, OutOfRangeRateIsFatal)
{
    PipelineModel model;
    EXPECT_EXIT(model.cpiAt(-1.0), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(model.cpiAt(101.0), ::testing::ExitedWithCode(1),
                "out of range");
}

} // namespace
} // namespace bpsim
