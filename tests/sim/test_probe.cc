/** @file Per-branch accounting probe tests.
 *
 * The probe contract (sim/probe.hh): a probed replay produces, on
 * every kernel path — solo, scalar bank, every available SIMD tier —
 * exactly the per-branch table the virtual simulate() loop produces,
 * while the aggregate counts stay bit-identical to an unprobed run.
 * PcIndex supplies the trace-side columns (executions, taken) that
 * probes deliberately do not accumulate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "sim/probe.hh"
#include "sim/replay.hh"
#include "sim/simd/kernel_tier.hh"
#include "sim/simulator.hh"
#include "trace/packed_trace.hh"
#include "trace/pc_index.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
probeSpec(const std::string &name, std::uint32_t seed)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 200;
    spec.dynamicBranches = 30'000;
    spec.seed = seed;
    return spec;
}

const MemoryTrace &
sharedTrace()
{
    static const MemoryTrace trace =
        generateWorkloadTrace(probeSpec("probe-test", 41));
    return trace;
}

const PackedTrace &
sharedPacked()
{
    static const PackedTrace packed(sharedTrace());
    return packed;
}

/** Expects two per-branch tables to be row-for-row identical. */
void
expectSamePerBranch(const std::vector<PerBranchResult> &got,
                    const std::vector<PerBranchResult> &want,
                    const std::string &where)
{
    ASSERT_EQ(got.size(), want.size()) << where;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].pc, want[i].pc) << where << " row " << i;
        EXPECT_EQ(got[i].executions, want[i].executions)
            << where << " row " << i;
        EXPECT_EQ(got[i].mispredictions, want[i].mispredictions)
            << where << " row " << i;
        EXPECT_EQ(got[i].takenCount, want[i].takenCount)
            << where << " row " << i;
    }
}

TEST(PcIndex, IdsAreDenseFirstAppearanceOrder)
{
    const PcIndex index(sharedPacked());
    ASSERT_EQ(index.size(), sharedPacked().size());
    ASSERT_GT(index.staticCount(), 0u);
    ASSERT_LE(index.staticCount(), 200u);

    // Every record's id resolves back to the record's pc, and the
    // first record carrying each id is also the first appearance of
    // that pc (dense, first-appearance order).
    const std::uint32_t *ids = index.idData();
    const std::uint64_t *pcs = sharedPacked().pcData();
    std::uint32_t maxSeen = 0;
    for (std::size_t i = 0; i < index.size(); ++i) {
        ASSERT_LT(ids[i], index.staticCount());
        ASSERT_EQ(index.pcOf(ids[i]), pcs[i]) << "record " << i;
        // A new id must be exactly the next unused integer.
        if (ids[i] > maxSeen) {
            ASSERT_EQ(ids[i], maxSeen + 1) << "record " << i;
            maxSeen = ids[i];
        }
    }
    EXPECT_EQ(std::size_t{maxSeen} + 1, index.staticCount());
}

TEST(PcIndex, CountRangeMatchesTraceFacts)
{
    const PcIndex index(sharedPacked());
    const std::size_t total = sharedPacked().size();

    const PcIndex::RangeCounts full =
        index.countRange(sharedPacked(), 0, total);
    std::uint64_t executions = 0, taken = 0;
    for (std::size_t k = 0; k < index.staticCount(); ++k) {
        executions += full.executions[k];
        taken += full.taken[k];
    }
    EXPECT_EQ(executions, total);
    std::uint64_t takenExpected = 0;
    for (std::size_t i = 0; i < total; ++i)
        takenExpected += sharedPacked().taken(i) ? 1 : 0;
    EXPECT_EQ(taken, takenExpected);

    // A split region sums to the whole.
    const std::size_t cut = 501; // mid-word on purpose
    const PcIndex::RangeCounts head =
        index.countRange(sharedPacked(), 0, cut);
    const PcIndex::RangeCounts tail =
        index.countRange(sharedPacked(), cut, total);
    for (std::size_t k = 0; k < index.staticCount(); ++k) {
        EXPECT_EQ(head.executions[k] + tail.executions[k],
                  full.executions[k])
            << "id " << k;
        EXPECT_EQ(head.taken[k] + tail.taken[k], full.taken[k])
            << "id " << k;
    }
}

TEST(Probe, ProbedAggregatesMatchUnprobed)
{
    for (const std::string config :
         {"gshare:n=8,h=6", "bimode:d=7", "bimodal:n=8"}) {
        PredictorPtr tracked = makePredictor(config);
        PredictorPtr plain = makePredictor(config);
        SimConfig simConfig;
        simConfig.warmupBranches = 500;

        auto readerA = sharedTrace().reader();
        simConfig.trackPerBranch = true;
        const SimResult probed =
            simulateAny(*tracked, readerA, &sharedPacked(), simConfig);
        auto readerB = sharedTrace().reader();
        simConfig.trackPerBranch = false;
        const SimResult bare =
            simulateAny(*plain, readerB, &sharedPacked(), simConfig);

        EXPECT_EQ(probed.branches, bare.branches) << config;
        EXPECT_EQ(probed.mispredictions, bare.mispredictions) << config;
        EXPECT_EQ(probed.takenBranches, bare.takenBranches) << config;
        EXPECT_FALSE(probed.perBranch.empty()) << config;
        EXPECT_TRUE(bare.perBranch.empty()) << config;
    }
}

TEST(Probe, SoloKernelMatchesVirtualLoop)
{
    for (const std::uint64_t warmup : {std::uint64_t{0},
                                       std::uint64_t{500}}) {
        for (const std::string config :
             {"gshare:n=8,h=6", "bimode:d=7", "bimodal:n=8"}) {
            SimConfig simConfig;
            simConfig.trackPerBranch = true;
            simConfig.warmupBranches = warmup;

            PredictorPtr fast = makePredictor(config);
            auto readerA = sharedTrace().reader();
            const SimResult kernel =
                simulateAny(*fast, readerA, &sharedPacked(), simConfig);

            PredictorPtr oracle = makePredictor(config);
            auto readerB = sharedTrace().reader();
            const SimResult virt = simulate(*oracle, readerB, simConfig);

            const std::string where =
                config + " warmup=" + std::to_string(warmup);
            EXPECT_EQ(kernel.mispredictions, virt.mispredictions)
                << where;
            expectSamePerBranch(kernel.perBranch, virt.perBranch, where);
        }
    }
}

TEST(Probe, PerBranchRowsSumToAggregates)
{
    SimConfig simConfig;
    simConfig.trackPerBranch = true;
    simConfig.warmupBranches = 500;
    PredictorPtr predictor = makePredictor("gshare:n=10,h=8");
    auto reader = sharedTrace().reader();
    const SimResult result =
        simulateAny(*predictor, reader, &sharedPacked(), simConfig);

    std::uint64_t executions = 0, mispredictions = 0, taken = 0;
    for (const PerBranchResult &row : result.perBranch) {
        EXPECT_GT(row.executions, 0u);
        EXPECT_LE(row.mispredictions, row.executions);
        EXPECT_LE(row.takenCount, row.executions);
        executions += row.executions;
        mispredictions += row.mispredictions;
        taken += row.takenCount;
    }
    EXPECT_EQ(executions, result.branches);
    EXPECT_EQ(mispredictions, result.mispredictions);
    EXPECT_EQ(taken, result.takenBranches);
}

TEST(Probe, AllWarmupLeavesEmptyTable)
{
    SimConfig simConfig;
    simConfig.trackPerBranch = true;
    simConfig.warmupBranches = sharedPacked().size();
    PredictorPtr predictor = makePredictor("gshare:n=8,h=6");
    auto reader = sharedTrace().reader();
    const SimResult result =
        simulateAny(*predictor, reader, &sharedPacked(), simConfig);
    EXPECT_EQ(result.branches, 0u);
    EXPECT_TRUE(result.perBranch.empty());
}

/**
 * The tier matrix of the probe layer: banked probed replay at every
 * lane count straddling the vector widths, on every tier this binary
 * can run, must reproduce the virtual loop's per-branch table for
 * every lane. Lanes use distinct configs so a cross-lane counter mixup
 * cannot cancel out.
 */
TEST(Probe, BankMatchesVirtualLoopAcrossTiers)
{
    const std::vector<std::string> ladder = {
        "gshare:n=6,h=3", "gshare:n=8,h=8", "gshare:n=10,h=5",
        "gshare:n=7,h=4", "gshare:n=9,h=6", "gshare:n=6,h=6",
        "gshare:n=8,h=2", "gshare:n=10,h=9", "gshare:n=7,h=7",
    };

    SimConfig simConfig;
    simConfig.trackPerBranch = true;
    simConfig.warmupBranches = 500;

    // Virtual-loop oracle per config, computed once.
    std::vector<SimResult> oracle;
    for (const std::string &config : ladder) {
        PredictorPtr predictor = makePredictor(config);
        auto reader = sharedTrace().reader();
        oracle.push_back(simulate(*predictor, reader, simConfig));
    }

    std::vector<KernelTier> tiers = {KernelTier::Scalar};
    for (const KernelTier tier : availableKernelTiers()) {
        if (tier != KernelTier::Scalar)
            tiers.push_back(tier);
    }

    for (const KernelTier tier : tiers) {
        for (const std::size_t lanes :
             {std::size_t{1}, std::size_t{7}, std::size_t{9}}) {
            std::vector<PredictorPtr> owned;
            std::vector<BranchPredictor *> bank;
            for (std::size_t l = 0; l < lanes; ++l) {
                owned.push_back(makePredictor(ladder[l]));
                bank.push_back(owned.back().get());
            }
            SimConfig tierConfig = simConfig;
            tierConfig.kernelTier = tier;
            std::vector<SimResult> results;
            ASSERT_TRUE(replayKernelBankAny("gshare", bank,
                                            sharedPacked(), tierConfig,
                                            results));
            ASSERT_EQ(results.size(), lanes);
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::string where =
                    ladder[l] + " tier=" + kernelTierName(tier) +
                    " lanes=" + std::to_string(lanes) + " lane=" +
                    std::to_string(l);
                EXPECT_EQ(results[l].mispredictions,
                          oracle[l].mispredictions)
                    << where;
                expectSamePerBranch(results[l].perBranch,
                                    oracle[l].perBranch, where);
            }
        }
    }
}

} // namespace
} // namespace bpsim
