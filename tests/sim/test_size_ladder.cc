/** @file Tests for the paper's size ladder / cost model. */

#include <gtest/gtest.h>

#include "core/bimode.hh"
#include "predictors/gshare.hh"
#include "sim/size_ladder.hh"

namespace bpsim
{
namespace
{

TEST(SizeLadder, PaperLadderCoversQuarterKToThirtyTwoK)
{
    const auto ladder = paperSizeLadder();
    ASSERT_EQ(ladder.size(), 8u);
    EXPECT_DOUBLE_EQ(ladder.front().gshareKBytes(), 0.25);
    EXPECT_DOUBLE_EQ(ladder.back().gshareKBytes(), 32.0);
    EXPECT_EQ(ladder.front().gshareIndexBits, 10u);
    EXPECT_EQ(ladder.back().gshareIndexBits, 17u);
}

TEST(SizeLadder, StepsDouble)
{
    const auto ladder = paperSizeLadder();
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_DOUBLE_EQ(ladder[i].gshareKBytes(),
                         2.0 * ladder[i - 1].gshareKBytes());
}

TEST(SizeLadder, BimodeNaturalCostIsOneAndAHalfTimes)
{
    // "bi-mode predictors naturally have a cost that is 1.5 times
    // that of the next smaller gshare scheme": the rung's bi-mode
    // point (d = n-1) has direction storage equal to the rung's
    // gshare (2 x 2^(n-1) = 2^n) plus a half-size choice table.
    for (const SizePoint &point : paperSizeLadder()) {
        EXPECT_DOUBLE_EQ(point.bimodeKBytes(),
                         1.5 * point.gshareKBytes());
        EXPECT_EQ(point.bimodeDirectionBits, point.gshareIndexBits - 1);
    }
}

TEST(SizeLadder, CostsMatchRealPredictors)
{
    for (const SizePoint &point : paperSizeLadder()) {
        GsharePredictor gshare(point.gshareIndexBits,
                               point.gshareIndexBits);
        EXPECT_DOUBLE_EQ(
            static_cast<double>(gshare.counterBits()) / 8 / 1024,
            point.gshareKBytes());
        BiModePredictor bimode(
            BiModeConfig::canonical(point.bimodeDirectionBits));
        EXPECT_DOUBLE_EQ(
            static_cast<double>(bimode.counterBits()) / 8 / 1024,
            point.bimodeKBytes());
    }
}

TEST(SizeLadder, CustomRange)
{
    const auto ladder = sizeLadder(8, 10);
    ASSERT_EQ(ladder.size(), 3u);
    EXPECT_EQ(ladder[0].gshareIndexBits, 8u);
    EXPECT_EQ(ladder[2].gshareIndexBits, 10u);
}

TEST(SizeLadderDeath, BadRangeIsFatal)
{
    EXPECT_EXIT(sizeLadder(12, 10), ::testing::ExitedWithCode(1),
                "bad size ladder");
    EXPECT_EXIT(sizeLadder(1, 10), ::testing::ExitedWithCode(1),
                "bad size ladder");
}

} // namespace
} // namespace bpsim
