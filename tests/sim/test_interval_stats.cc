/** @file Tests for the learning-curve interval measurement. */

#include <gtest/gtest.h>

#include "predictors/bimodal.hh"
#include "predictors/static_predictors.hh"
#include "sim/interval_stats.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(IntervalStats, ExactIntervalRates)
{
    // 4 intervals of 10 with known always-taken outcomes vs an
    // always-not-taken predictor: 100% per interval.
    MemoryTrace trace;
    for (int i = 0; i < 40; ++i)
        trace.append(cond(0x1000, true));
    AlwaysNotTakenPredictor predictor;
    auto reader = trace.reader();
    const IntervalSeries series =
        measureIntervals(predictor, reader, 10);
    ASSERT_EQ(series.mispredictPercent.size(), 4u);
    for (double v : series.mispredictPercent)
        EXPECT_DOUBLE_EQ(v, 100.0);
    EXPECT_DOUBLE_EQ(series.overallPercent, 100.0);
}

TEST(IntervalStats, PartialTrailingIntervalDropped)
{
    MemoryTrace trace;
    for (int i = 0; i < 25; ++i)
        trace.append(cond(0x1000, true));
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    const IntervalSeries series =
        measureIntervals(predictor, reader, 10);
    EXPECT_EQ(series.mispredictPercent.size(), 2u);
    // Overall still counts the tail.
    EXPECT_DOUBLE_EQ(series.overallPercent, 0.0);
}

TEST(IntervalStats, WarmupVisibleForColdCounters)
{
    // A not-taken-biased branch: bimodal starts weakly-taken, so the
    // first interval carries the only misprediction.
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i)
        trace.append(cond(0x1000, false));
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    const IntervalSeries series =
        measureIntervals(predictor, reader, 10);
    ASSERT_EQ(series.mispredictPercent.size(), 10u);
    EXPECT_GT(series.mispredictPercent.front(), 0.0);
    EXPECT_DOUBLE_EQ(series.mispredictPercent.back(), 0.0);
    EXPECT_LE(series.warmupIntervals(), 1u);
}

TEST(IntervalStats, SteadyStateUsesTail)
{
    IntervalSeries series;
    series.intervalLength = 10;
    series.mispredictPercent = {50.0, 20.0, 10.0, 10.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(series.steadyStatePercent(4), 10.0);
    EXPECT_DOUBLE_EQ(series.steadyStatePercent(100), 110.0 / 6.0);
}

TEST(IntervalStats, WarmupIntervalDetection)
{
    IntervalSeries series;
    series.mispredictPercent = {30.0, 14.0, 10.5, 10.0, 10.0, 10.0,
                                10.0};
    EXPECT_EQ(series.warmupIntervals(1.0), 2u);
    EXPECT_EQ(series.warmupIntervals(5.0), 1u);
}

TEST(IntervalStats, EmptySeries)
{
    IntervalSeries series;
    EXPECT_DOUBLE_EQ(series.steadyStatePercent(), 0.0);
    EXPECT_EQ(series.warmupIntervals(), 0u);
}

TEST(IntervalStatsDeath, ZeroIntervalIsFatal)
{
    MemoryTrace trace;
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    EXPECT_EXIT(measureIntervals(predictor, reader, 0),
                ::testing::ExitedWithCode(1), "at least 1");
}

} // namespace
} // namespace bpsim
