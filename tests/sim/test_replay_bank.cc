/** @file Bit-identity tests for the banked multi-config replay path.
 *
 * The contract (sim/replay_kernel.hh, replayKernelBank()): stepping N
 * predictor instances through one trace pass must produce, for every
 * lane, exactly the counts of a solo replayKernel() run AND leave the
 * instance in the identical state — fusion may only change wall time.
 * Each equivalence test runs two banked passes without resetting, so
 * a state divergence in pass one surfaces as a count mismatch in pass
 * two. The campaign-level tests check the emitter form of the same
 * contract: fused and unfused runs serialize byte-identically.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "sim/simd/kernel_tier.hh"
#include "sim/trace_cache.hh"
#include "trace/packed_trace.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
bankSpec(const std::string &name, std::uint32_t seed)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 200;
    spec.dynamicBranches = 30'000;
    spec.seed = seed;
    return spec;
}

const MemoryTrace &
sharedTrace()
{
    static const MemoryTrace trace =
        generateWorkloadTrace(bankSpec("bank-test", 29));
    return trace;
}

const PackedTrace &
sharedPacked()
{
    static const PackedTrace packed(sharedTrace());
    return packed;
}

/**
 * A mixed-size bank per fast-replay kind: lanes deliberately differ
 * in table size (and secondary knobs) so per-lane state separation
 * is actually exercised — a bank bug that leaks state between lanes
 * cannot cancel out across identical configs.
 * BankCoverage.CoversEveryFastReplayKind fails if a kind ever gains
 * a bank kernel without extending this table.
 */
const std::map<std::string, std::vector<std::string>> kBankSpecs = {
    {"bimodal", {"bimodal:n=6", "bimodal:n=8", "bimodal:n=10"}},
    {"gag", {"gag:h=6", "gag:h=8", "gag:h=10"}},
    {"gas", {"gas:h=5,a=2", "gas:h=6,a=3", "gas:h=8,a=2"}},
    {"pag", {"pag:h=5,l=5", "pag:h=6,l=6", "pag:h=8,l=4"}},
    {"pas", {"pas:h=4,l=5,a=2", "pas:h=5,l=6,a=3"}},
    {"gshare", {"gshare:n=6,h=3", "gshare:n=8,h=8", "gshare:n=10,h=5"}},
    // The ablation configs ride in the same bank as canonical lanes,
    // so the per-lane policy masks (bothBanksMask, alwaysChoiceMask)
    // of the vectorized choice kernel are exercised mixed, the way
    // the ablation_bimode campaign fuses them.
    {"bimode", {"bimode:d=6", "bimode:d=7,c=6,h=5", "bimode:d=8",
                "bimode:d=7,partial=0", "bimode:d=7,alwayschoice=1",
                "bimode:d=6,partial=0,alwayschoice=1"}},
    {"agree", {"agree:n=6,h=4,b=6", "agree:n=8,h=8,b=8",
               "agree:n=7,h=3,b=9"}},
    // The full-update ablation lane rides the same bank as canonical
    // partial-update lanes, exercising the mixed per-lane
    // bothBanksMask of the vectorized majority-vote kernel.
    {"gskew", {"gskew:n=6,h=5", "gskew:n=7,h=7", "gskew:n=8,h=4",
               "gskew:n=7,h=6,partial=0"}},
    // t=2 leaves 4 distinct tags over a small cache, forcing constant
    // tag conflicts so the miss/alloc path of the vectorized tagged
    // probe is hammered rather than grazed.
    {"yags", {"yags:c=7,n=5,t=5,h=5", "yags:c=8,n=6,t=6,h=6",
              "yags:c=6,n=5,t=2,h=4"}},
    {"tournament", {"tournament:n=6", "tournament:n=7",
                    "tournament:n=8"}},
    {"filter", {"filter:n=6,h=4,b=6,k=2", "filter:n=8,h=8,b=8,k=3",
                "filter:n=10,h=5,b=7,k=6"}},
};

TEST(BankCoverage, CoversEveryFastReplayKind)
{
    for (const std::string &kind : knownPredictorKinds()) {
        if (!hasFastReplay(kind))
            continue;
        EXPECT_TRUE(kBankSpecs.count(kind) == 1)
            << "no bank-equivalence specs for fast-replay kind '"
            << kind << "' — extend kBankSpecs";
    }
}

TEST(BankCoverage, FastReplayKindIntrospection)
{
    EXPECT_EQ(fastReplayKind("gshare:n=8,h=4"), "gshare");
    EXPECT_EQ(fastReplayKind("bimode:d=7"), "bimode");
    // Parseable but no bank kernel.
    EXPECT_EQ(fastReplayKind("perceptron:n=5,h=12"), "");
    EXPECT_EQ(fastReplayKind("taken"), "");
    // Unparseable.
    EXPECT_EQ(fastReplayKind("gshare:n=notanumber"), "");
    EXPECT_EQ(fastReplayKind("no-such-kind"), "");
    EXPECT_EQ(fastReplayKind(""), "");
}

class BankEquivalence
    : public ::testing::TestWithParam<
          std::pair<const std::string, std::vector<std::string>>>
{
};

TEST_P(BankEquivalence, CountsAndStateMatchSoloKernel)
{
    const std::string &kind = GetParam().first;
    const std::vector<std::string> &configs = GetParam().second;

    std::vector<PredictorPtr> banked;
    std::vector<PredictorPtr> solo;
    std::vector<BranchPredictor *> bank;
    for (const std::string &config : configs) {
        banked.push_back(makePredictor(config));
        solo.push_back(makePredictor(config));
        bank.push_back(banked.back().get());
    }

    SimConfig sim_config;
    sim_config.warmupBranches = 500;

    // Two passes, no reset: pass 2 only matches if the bank pass
    // moved every lane's state back bit-identically.
    for (int pass = 1; pass <= 2; ++pass) {
        std::vector<SimResult> fused;
        ASSERT_TRUE(replayKernelBankAny(kind, bank, sharedPacked(),
                                        sim_config, fused));
        ASSERT_EQ(fused.size(), configs.size());

        for (std::size_t l = 0; l < configs.size(); ++l) {
            auto reader = sharedTrace().reader();
            const SimResult expected = simulateAny(
                *solo[l], reader, &sharedPacked(), sim_config);
            EXPECT_EQ(fused[l].branches, expected.branches)
                << configs[l] << " pass " << pass;
            EXPECT_EQ(fused[l].mispredictions, expected.mispredictions)
                << configs[l] << " pass " << pass;
            EXPECT_EQ(fused[l].takenBranches, expected.takenBranches)
                << configs[l] << " pass " << pass;
            EXPECT_EQ(fused[l].predictorName, expected.predictorName)
                << configs[l];
            EXPECT_EQ(fused[l].storageBits, expected.storageBits)
                << configs[l];
        }
    }
}

TEST_P(BankEquivalence, FusedTimingAttribution)
{
    const std::string &kind = GetParam().first;
    const std::vector<std::string> &configs = GetParam().second;

    std::vector<PredictorPtr> owned;
    std::vector<BranchPredictor *> bank;
    for (const std::string &config : configs) {
        owned.push_back(makePredictor(config));
        bank.push_back(owned.back().get());
    }

    std::vector<SimResult> fused;
    ASSERT_TRUE(replayKernelBankAny(kind, bank, sharedPacked(), {},
                                    fused));
    for (const SimResult &result : fused) {
        // Every lane shared one pass of `lanes` width and reports an
        // equal share of its wall time.
        EXPECT_EQ(result.fusedLanes, configs.size());
        EXPECT_EQ(result.wallNanos, fused.front().wallNanos);
    }
}

std::string
bankTestName(
    const ::testing::TestParamInfo<
        std::pair<const std::string, std::vector<std::string>>> &info)
{
    return info.param.first;
}

INSTANTIATE_TEST_SUITE_P(AllFastKinds, BankEquivalence,
                         ::testing::ValuesIn(kBankSpecs.begin(),
                                             kBankSpecs.end()),
                         bankTestName);

/** Kinds with a vectorized bank flattening (buildSimdBank overloads)
 *  — the only ones where a forced SIMD tier actually changes the
 *  executed code path and must be attributed in SimResult. */
bool
kindHasSimdBank(const std::string &kind)
{
    return kind == "bimodal" || kind == "gshare" || kind == "gag" ||
           kind == "gas" || kind == "pag" || kind == "pas" ||
           kind == "bimode" || kind == "agree" ||
           kind == "tournament" || kind == "gskew" ||
           kind == "yags" || kind == "filter";
}

/**
 * Two no-reset banked passes at a forced kernel tier — the
 * comparison unit of the tier matrix. Pass 2 only reproduces the
 * oracle if pass 1 left every lane's counters and histories
 * bit-identical, so final-state divergence surfaces as a pass-2
 * count mismatch without needing a state walker per kind.
 */
std::array<std::vector<SimResult>, 2>
runTierPasses(const std::string &kind,
              const std::vector<std::string> &configs,
              std::size_t lanes, KernelTier tier)
{
    std::vector<PredictorPtr> owned;
    std::vector<BranchPredictor *> bank;
    for (std::size_t l = 0; l < lanes; ++l) {
        owned.push_back(makePredictor(configs[l % configs.size()]));
        bank.push_back(owned.back().get());
    }

    SimConfig config;
    // 500 splits a 64-bit taken-bitmap word: the warmup/measured
    // boundary lands mid-word in both the scalar and vector loops.
    config.warmupBranches = 500;
    config.kernelTier = tier;

    std::array<std::vector<SimResult>, 2> passes;
    for (auto &results : passes) {
        EXPECT_TRUE(replayKernelBankAny(kind, bank, sharedPacked(),
                                        config, results))
            << kind << " lanes=" << lanes << " tier="
            << kernelTierName(tier);
    }
    return passes;
}

class TierMatrix
    : public ::testing::TestWithParam<
          std::pair<const std::string, std::vector<std::string>>>
{
};

/**
 * The tier matrix: every tier this binary can run here × every
 * fast-replay kind × lane counts around the vector widths (1 solo,
 * 7/9 straddling the 8-wide groups, 8 exact, 32 = the campaign
 * maximum spanning two 16-wide groups) must match the forced-scalar
 * oracle in every count, on both of the no-reset passes.
 */
TEST_P(TierMatrix, MatchesScalarOracleAtEveryLaneCount)
{
    const std::string &kind = GetParam().first;
    const std::vector<std::string> &configs = GetParam().second;

    for (const std::size_t lanes :
         {std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{32}}) {
        const auto oracle =
            runTierPasses(kind, configs, lanes, KernelTier::Scalar);

        for (const KernelTier tier : availableKernelTiers()) {
            if (tier == KernelTier::Scalar)
                continue;
            const auto vec = runTierPasses(kind, configs, lanes, tier);

            for (int pass = 0; pass < 2; ++pass) {
                ASSERT_EQ(vec[pass].size(), lanes);
                for (std::size_t l = 0; l < lanes; ++l) {
                    const std::string where =
                        kind + " tier=" + kernelTierName(tier) +
                        " lanes=" + std::to_string(lanes) +
                        " lane=" + std::to_string(l) + " pass=" +
                        std::to_string(pass + 1);
                    EXPECT_EQ(vec[pass][l].mispredictions,
                              oracle[pass][l].mispredictions)
                        << where;
                    EXPECT_EQ(vec[pass][l].branches,
                              oracle[pass][l].branches)
                        << where;
                    EXPECT_EQ(vec[pass][l].takenBranches,
                              oracle[pass][l].takenBranches)
                        << where;
                    // A multi-lane bank of a SIMD-capable kind must
                    // actually have run (and report) the forced
                    // tier; other kinds ride the scalar fallback.
                    if (kindHasSimdBank(kind) && lanes > 1) {
                        EXPECT_EQ(vec[pass][l].kernelTier, tier)
                            << where;
                    } else {
                        EXPECT_EQ(vec[pass][l].kernelTier,
                                  KernelTier::Scalar)
                            << where;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFastKinds, TierMatrix,
                         ::testing::ValuesIn(kBankSpecs.begin(),
                                             kBankSpecs.end()),
                         bankTestName);

TEST(BankKernel, SingleLaneIsTimedAlone)
{
    PredictorPtr predictor = makePredictor("gshare:n=8");
    std::vector<BranchPredictor *> bank = {predictor.get()};
    std::vector<SimResult> results;
    ASSERT_TRUE(replayKernelBankAny("gshare", bank, sharedPacked(), {},
                                    results));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].fusedLanes, 0u);
    EXPECT_GT(results[0].wallNanos, 0u);
}

TEST(BankKernel, RefusesUnknownKindUntouched)
{
    PredictorPtr predictor = makePredictor("perceptron:n=5,h=12");
    std::vector<BranchPredictor *> bank = {predictor.get()};
    std::vector<SimResult> results;
    EXPECT_FALSE(replayKernelBankAny("perceptron", bank, sharedPacked(),
                                     {}, results));
    EXPECT_TRUE(results.empty());
}

TEST(BankKernel, RefusesMixedGroupWithoutDisturbingState)
{
    PredictorPtr gshare_a = makePredictor("gshare:n=8,h=8");
    PredictorPtr gshare_b = makePredictor("gshare:n=8,h=8");
    PredictorPtr bimode = makePredictor("bimode:d=7");
    std::vector<BranchPredictor *> bank = {gshare_a.get(),
                                           bimode.get()};
    std::vector<SimResult> results;
    EXPECT_FALSE(replayKernelBankAny("gshare", bank, sharedPacked(), {},
                                     results));

    // The refused instance must still behave like an untouched one.
    auto reader_a = sharedTrace().reader();
    const SimResult after =
        simulateAny(*gshare_a, reader_a, &sharedPacked());
    auto reader_b = sharedTrace().reader();
    const SimResult fresh =
        simulateAny(*gshare_b, reader_b, &sharedPacked());
    EXPECT_EQ(after.mispredictions, fresh.mispredictions);
}

/** Fused and unfused campaign runs over the same grid, at the given
 *  worker counts, must serialize byte-identically. */
void
expectFusedMatchesUnfused(const std::vector<std::string> &configs,
                          const std::vector<BenchmarkTrace> &benchmarks,
                          unsigned fused_workers,
                          unsigned unfused_workers)
{
    Campaign fused;
    fused.addGrid(configs, benchmarks);
    ASSERT_TRUE(fused.fusionEnabled());

    Campaign unfused;
    unfused.addGrid(configs, benchmarks);
    unfused.setFusion(false);
    ASSERT_FALSE(unfused.fusionEnabled());

    const auto fused_results = fused.run(fused_workers);
    const auto unfused_results = unfused.run(unfused_workers);
    ASSERT_EQ(fused_results.size(), unfused_results.size());

    // Default serialization excludes timing, so the runs must be
    // byte-identical — including error rows and non-fast kinds.
    std::ostringstream fused_json, unfused_json;
    writeResultsJson(fused_json, fused_results);
    writeResultsJson(unfused_json, unfused_results);
    EXPECT_EQ(fused_json.str(), unfused_json.str());

    for (const JobResult &result : unfused_results) {
        if (result.ok()) {
            EXPECT_EQ(result.result.fusedLanes, 0u);
        }
    }
}

TEST(BankCampaign, FusedMatchesUnfusedByteForByte)
{
    TraceCache cache;
    const std::vector<BenchmarkTrace> benchmarks = resolveTraces(
        cache, {bankSpec("bank-a", 3), bankSpec("bank-b", 4)});

    // A grid that exercises every scheduling path at once: a fusable
    // ladder, further fusable kinds (including the registry-promoted
    // filter and gag), a non-fast kind (virtual loop), and a config
    // error.
    const std::vector<std::string> configs = {
        "gshare:n=6,h=3",  "gshare:n=8,h=4", "gshare:n=10,h=5",
        "bimode:d=7",      "perceptron:n=5,h=12",
        "filter:n=8,h=8,b=8,k=3", "filter:n=6,h=4,b=6,k=2",
        "gag:h=8",         "gag:h=10",
        "gshare:n=oops",
    };
    expectFusedMatchesUnfused(configs, benchmarks, 0, 1);
}

TEST(BankCampaign, MixedWarmupsDoNotCrossFuse)
{
    TraceCache cache;
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {bankSpec("bank-warm", 5)});

    Campaign fused;
    SimConfig warm;
    warm.warmupBranches = 1000;
    fused.addJob("gshare:n=8,h=4", benchmarks[0]);
    fused.addJob("gshare:n=8,h=4", benchmarks[0], warm);
    fused.addJob("gshare:n=8,h=8", benchmarks[0], warm);

    Campaign unfused;
    unfused.addJob("gshare:n=8,h=4", benchmarks[0]);
    unfused.addJob("gshare:n=8,h=4", benchmarks[0], warm);
    unfused.addJob("gshare:n=8,h=8", benchmarks[0], warm);
    unfused.setFusion(false);

    const auto fused_results = fused.run(1);
    const auto unfused_results = unfused.run(1);
    ASSERT_EQ(fused_results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(fused_results[i].ok());
        EXPECT_EQ(fused_results[i].result.mispredictions,
                  unfused_results[i].result.mispredictions);
        EXPECT_EQ(fused_results[i].result.branches,
                  unfused_results[i].result.branches);
    }
    // Different warm-up lengths may not share a bank.
    EXPECT_EQ(fused_results[0].result.fusedLanes, 0u);
    EXPECT_EQ(fused_results[1].result.fusedLanes, 2u);
    EXPECT_EQ(fused_results[2].result.fusedLanes, 2u);
}

TEST(BankCampaign, WideLadderSplitsAcrossBanksIdentically)
{
    TraceCache cache;
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {bankSpec("bank-wide", 6)});

    // 40 same-kind jobs exceed kMaxBankLanes (32), forcing a split
    // into multiple banks on one trace.
    std::vector<std::string> configs;
    for (unsigned h = 0; h <= 39; ++h)
        configs.push_back("gshare:n=12,h=" + std::to_string(h % 13));
    expectFusedMatchesUnfused(configs, benchmarks, 0, 1);
}

TEST(BankCampaign, PerBranchTrackingFusesAndMatchesVirtualLoop)
{
    TraceCache cache;
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {bankSpec("bank-track", 7)});

    SimConfig tracking;
    tracking.trackPerBranch = true;
    Campaign campaign;
    campaign.addJob("gshare:n=8,h=4", benchmarks[0], tracking);
    campaign.addJob("gshare:n=8,h=8", benchmarks[0], tracking);
    const auto results = campaign.run(1);
    ASSERT_EQ(results.size(), 2u);
    for (const JobResult &result : results) {
        ASSERT_TRUE(result.ok());
        // Probed banks fuse like unprobed ones (the tracking flag
        // only partitions the fusion key, it no longer pins jobs to
        // the per-job path).
        EXPECT_EQ(result.result.fusedLanes, 2u);
        ASSERT_FALSE(result.result.perBranch.empty());

        // The fused per-branch table must be row-for-row identical
        // to the virtual loop's.
        PredictorPtr oracle = makePredictor(result.configText);
        auto reader = benchmarks[0].trace->reader();
        const SimResult expected = simulate(*oracle, reader, tracking);
        ASSERT_EQ(result.result.perBranch.size(),
                  expected.perBranch.size());
        for (std::size_t i = 0; i < expected.perBranch.size(); ++i) {
            const PerBranchResult &got = result.result.perBranch[i];
            const PerBranchResult &want = expected.perBranch[i];
            EXPECT_EQ(got.pc, want.pc) << result.configText << " row "
                                       << i;
            EXPECT_EQ(got.executions, want.executions)
                << result.configText << " row " << i;
            EXPECT_EQ(got.mispredictions, want.mispredictions)
                << result.configText << " row " << i;
            EXPECT_EQ(got.takenCount, want.takenCount)
                << result.configText << " row " << i;
        }
    }
}

TEST(BankCampaign, TrackedAndUntrackedJobsDoNotCrossFuse)
{
    TraceCache cache;
    const std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {bankSpec("bank-track-mix", 8)});

    SimConfig tracking;
    tracking.trackPerBranch = true;
    Campaign campaign;
    campaign.addJob("gshare:n=8,h=4", benchmarks[0]);
    campaign.addJob("gshare:n=8,h=4", benchmarks[0], tracking);
    campaign.addJob("gshare:n=8,h=8", benchmarks[0], tracking);
    campaign.addJob("gshare:n=8,h=8", benchmarks[0]);
    const auto results = campaign.run(1);
    ASSERT_EQ(results.size(), 4u);
    for (const JobResult &result : results)
        ASSERT_TRUE(result.ok());
    // The two untracked jobs bank together, as do the two tracked
    // ones — but never across the tracking boundary, so untracked
    // lanes keep the unprobed kernel instantiation.
    EXPECT_EQ(results[0].result.fusedLanes, 2u);
    EXPECT_EQ(results[3].result.fusedLanes, 2u);
    EXPECT_TRUE(results[0].result.perBranch.empty());
    EXPECT_TRUE(results[3].result.perBranch.empty());
    EXPECT_EQ(results[1].result.fusedLanes, 2u);
    EXPECT_EQ(results[2].result.fusedLanes, 2u);
    EXPECT_FALSE(results[1].result.perBranch.empty());
    EXPECT_FALSE(results[2].result.perBranch.empty());
}

} // namespace
} // namespace bpsim
