/** @file Tests for the trace-driven simulation loop. */

#include <gtest/gtest.h>

#include <sstream>

#include "predictors/static_predictors.hh"
#include "predictors/bimodal.hh"
#include "sim/simulator.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(Simulator, ExactCountsWithStaticPredictor)
{
    MemoryTrace trace;
    trace.append(cond(0x1000, true));
    trace.append(cond(0x1000, false));
    trace.append(cond(0x1000, true));
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader);
    EXPECT_EQ(result.branches, 3u);
    EXPECT_EQ(result.mispredictions, 1u);
    EXPECT_EQ(result.takenBranches, 2u);
    EXPECT_NEAR(result.mispredictionRate(), 100.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.accuracy(), 200.0 / 3.0, 1e-9);
}

TEST(SimResult, ToJsonIsSelfDescribing)
{
    SimResult result;
    result.predictorName = "gshare(n=4,h=4)";
    result.benchmark = "gcc";
    result.configText = "gshare:n=4";
    result.counterBits = 32;
    result.storageBits = 36;
    result.branches = 8;
    result.mispredictions = 2;
    result.takenBranches = 5;
    std::ostringstream os;
    result.toJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"benchmark\":\"gcc\""), std::string::npos);
    EXPECT_NE(json.find("\"config\":\"gshare:n=4\""),
              std::string::npos);
    EXPECT_NE(json.find("\"predictor\":\"gshare(n=4,h=4)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"branches\":8"), std::string::npos);
    EXPECT_NE(json.find("\"mispredictions\":2"), std::string::npos);
    EXPECT_NE(json.find("\"mispredictionRate\":25"),
              std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Simulator, EmptyTrace)
{
    MemoryTrace trace;
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader);
    EXPECT_EQ(result.branches, 0u);
    EXPECT_EQ(result.mispredictionRate(), 0.0);
}

TEST(Simulator, SkipsNonConditionalRecords)
{
    MemoryTrace trace;
    trace.append(cond(0x1000, true));
    BranchRecord call = cond(0x1004, true);
    call.type = BranchType::Call;
    trace.append(call);
    AlwaysNotTakenPredictor predictor;
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader);
    EXPECT_EQ(result.branches, 1u);
    EXPECT_EQ(result.mispredictions, 1u);
}

TEST(Simulator, WarmupExcludedFromStats)
{
    MemoryTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.append(cond(0x1000, false));
    // Bimodal starts weakly-taken: the first prediction is wrong,
    // then the counter has crossed to the not-taken side.
    BimodalPredictor cold(4);
    auto reader = trace.reader();
    const SimResult without = simulate(cold, reader);
    EXPECT_EQ(without.mispredictions, 1u);
    EXPECT_EQ(without.branches, 10u);

    BimodalPredictor warmed(4);
    SimConfig config;
    config.warmupBranches = 4;
    auto reader2 = trace.reader();
    const SimResult with = simulate(warmed, reader2, config);
    EXPECT_EQ(with.branches, 6u);
    EXPECT_EQ(with.mispredictions, 0u);
}

TEST(Simulator, RewindsTraceItself)
{
    MemoryTrace trace;
    trace.append(cond(0x1000, true));
    auto reader = trace.reader();
    BranchRecord sink;
    ASSERT_TRUE(reader.next(sink)); // consume before simulating
    AlwaysTakenPredictor predictor;
    const SimResult result = simulate(predictor, reader);
    EXPECT_EQ(result.branches, 1u) << "simulate() must rewind";
}

TEST(Simulator, PerBranchTracking)
{
    MemoryTrace trace;
    for (int i = 0; i < 6; ++i)
        trace.append(cond(0x1000, true));
    for (int i = 0; i < 4; ++i)
        trace.append(cond(0x2000, i % 2 == 0));
    AlwaysTakenPredictor predictor;
    SimConfig config;
    config.trackPerBranch = true;
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader, config);
    ASSERT_EQ(result.perBranch.size(), 2u);
    EXPECT_EQ(result.perBranch[0].pc, 0x1000u);
    EXPECT_EQ(result.perBranch[0].executions, 6u);
    EXPECT_EQ(result.perBranch[0].mispredictions, 0u);
    EXPECT_EQ(result.perBranch[1].pc, 0x2000u);
    EXPECT_EQ(result.perBranch[1].executions, 4u);
    EXPECT_EQ(result.perBranch[1].mispredictions, 2u);
    EXPECT_EQ(result.perBranch[1].takenCount, 2u);
}

TEST(Simulator, ResultCarriesPredictorMetadata)
{
    MemoryTrace trace;
    trace.append(cond(0x1000, true));
    BimodalPredictor predictor(10);
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader);
    EXPECT_EQ(result.predictorName, "bimodal(n=10)");
    EXPECT_EQ(result.counterBits, 2048u);
    EXPECT_NEAR(result.counterKBytes(), 0.25, 1e-12);
}

TEST(Simulator, FeedsTargetsToBtfn)
{
    // BTFN needs observeTarget(); the simulator must call it.
    MemoryTrace trace;
    BranchRecord backward = cond(0x2000, true);
    backward.target = 0x1000;
    for (int i = 0; i < 5; ++i)
        trace.append(backward);
    BtfnPredictor predictor(8);
    auto reader = trace.reader();
    const SimResult result = simulate(predictor, reader);
    // First encounter is unknown (predicts not-taken, actual taken);
    // after that the backward sense predicts taken.
    EXPECT_EQ(result.mispredictions, 1u);
}

} // namespace
} // namespace bpsim
