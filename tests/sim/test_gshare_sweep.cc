/** @file Tests for the gshare.best exhaustive sweep (paper §3.1). */

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "sim/gshare_sweep.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

/** A trace whose branches strictly alternate: any history helps,
 *  and more history does not hurt (one pc, no aliasing). */
MemoryTrace
alternatingTrace(std::size_t n)
{
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i)
        trace.append(cond(0x1000, i % 2 == 0));
    return trace;
}

/**
 * A trace built to punish history: many strongly biased branches in
 * both directions whose outcomes are iid coin contexts, so history
 * only fragments and aliases the table.
 */
MemoryTrace
aliasHeavyTrace(std::size_t n)
{
    Rng rng(5);
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t site = rng.nextBounded(4000);
        const bool biased_taken = site % 2 == 0;
        // 2% deviation keeps history windows diverse.
        const bool outcome = rng.nextBool(0.02) ? !biased_taken
                                                : biased_taken;
        trace.append(cond(0x400000 + 4 * site * 3, outcome));
    }
    return trace;
}

TEST(GshareSweep, CoversRequestedRange)
{
    const MemoryTrace trace = alternatingTrace(2000);
    const auto result = sweepGshare(6, {&trace}, 2);
    ASSERT_EQ(result.points.size(), 5u);
    EXPECT_EQ(result.points.front().historyBits, 2u);
    EXPECT_EQ(result.points.back().historyBits, 6u);
    EXPECT_EQ(result.indexBits, 6u);
}

TEST(GshareSweep, HistoryWinsOnAlternation)
{
    const MemoryTrace trace = alternatingTrace(4000);
    const auto result = sweepGshare(6, {&trace});
    // m = 0 is bimodal: ~50% error; any m >= 1 nails it.
    EXPECT_GT(result.points[0].average, 40.0);
    EXPECT_LT(result.points[1].average, 5.0);
    EXPECT_GE(result.best().historyBits, 1u);
}

TEST(GshareSweep, ShortHistoryWinsOnAliasHeavyTrace)
{
    const MemoryTrace trace = aliasHeavyTrace(60'000);
    const auto result = sweepGshare(8, {&trace});
    // 4000 sites on 256 counters: long history only fragments.
    EXPECT_LT(result.best().historyBits, 8u);
    EXPECT_LT(result.best().average,
              result.points.back().average);
}

TEST(GshareSweep, AveragesAcrossTraces)
{
    const MemoryTrace a = alternatingTrace(2000);
    const MemoryTrace b = alternatingTrace(2000);
    const auto result = sweepGshare(4, std::vector<const MemoryTrace *>{&a, &b});
    for (const auto &point : result.points) {
        ASSERT_EQ(point.perBenchmark.size(), 2u);
        EXPECT_NEAR(point.average,
                    (point.perBenchmark[0] + point.perBenchmark[1]) / 2,
                    1e-9);
    }
}

TEST(GshareSweep, BestIsMinimum)
{
    const MemoryTrace trace = aliasHeavyTrace(20'000);
    const auto result = sweepGshare(6, {&trace});
    const auto &best = result.best();
    for (const auto &point : result.points)
        EXPECT_LE(best.average, point.average);
}

TEST(GshareSweep, ParallelMatchesSerialBitForBit)
{
    const MemoryTrace a = aliasHeavyTrace(20'000);
    const MemoryTrace b = alternatingTrace(4'000);

    setDefaultWorkerCount(1);
    const auto serial = sweepGshare(6, std::vector<const MemoryTrace *>{&a, &b});
    setDefaultWorkerCount(4);
    const auto parallel = sweepGshare(6, std::vector<const MemoryTrace *>{&a, &b});
    setDefaultWorkerCount(0);

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(serial.points[i].historyBits,
                  parallel.points[i].historyBits);
        // Exact equality: same jobs, same per-point accumulation
        // order, regardless of the thread schedule.
        EXPECT_EQ(serial.points[i].average,
                  parallel.points[i].average);
        EXPECT_EQ(serial.points[i].perBenchmark,
                  parallel.points[i].perBenchmark);
    }
}

TEST(GshareSweepDeath, NoTracesPanics)
{
    // Explicit vector type: `{}` alone would be ambiguous between
    // the trace-pointer and BenchmarkTrace overloads.
    EXPECT_DEATH(sweepGshare(6, std::vector<const MemoryTrace *>{}),
                 "at least one trace");
}

} // namespace
} // namespace bpsim
