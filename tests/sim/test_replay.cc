/** @file Bit-identity tests for the devirtualized replay path.
 *
 * The contract (sim/replay_kernel.hh): for every factory-
 * constructible predictor, simulateAny() must produce exactly the
 * counts of the virtual simulate() loop AND leave the predictor in
 * the identical state. Each equivalence test therefore runs two
 * passes without resetting — a state divergence in pass one surfaces
 * as a count mismatch in pass two.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "sim/trace_cache.hh"
#include "trace/packed_trace.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

WorkloadSpec
replaySpec()
{
    WorkloadSpec spec;
    spec.name = "replay-test";
    spec.suite = "test";
    spec.staticBranches = 200;
    spec.dynamicBranches = 30'000;
    spec.seed = 17;
    return spec;
}

/** A shared workload trace (includes non-conditional records). */
const MemoryTrace &
sharedTrace()
{
    static const MemoryTrace trace = generateWorkloadTrace(replaySpec());
    return trace;
}

const PackedTrace &
sharedPacked()
{
    static const PackedTrace packed(sharedTrace());
    return packed;
}

/**
 * One configuration per factory kind, sized small so the aliasing
 * that distinguishes the schemes actually occurs in 30k branches.
 * CoversEveryFactoryKind below fails if a kind is ever added to the
 * factory without extending this list.
 */
const std::vector<std::string> kAllKindSpecs = {
    "taken",
    "nottaken",
    "btfn:l=6",
    "bimodal:n=8",
    "gag:h=8",
    "gas:h=6,a=2",
    "pag:h=6,l=6",
    "pas:h=5,l=6,a=2",
    "gshare:n=8,h=8",
    "bimode:d=7,c=7,h=7",
    "agree:n=8,h=8,b=8",
    "gskew:n=7,h=7",
    "yags:c=8,n=6,t=6,h=6",
    "tournament:n=7",
    "perceptron:n=5,h=12",
    "filter:n=8,h=8,b=8,k=3",
};

std::string
kindOf(const std::string &config)
{
    return config.substr(0, config.find(':'));
}

TEST(ReplayCoverage, CoversEveryFactoryKind)
{
    for (const std::string &kind : knownPredictorKinds()) {
        const bool covered = std::any_of(
            kAllKindSpecs.begin(), kAllKindSpecs.end(),
            [&](const std::string &config) {
                return kindOf(config) == kind;
            });
        EXPECT_TRUE(covered)
            << "no replay-equivalence spec for factory kind '" << kind
            << "' — extend kAllKindSpecs";
    }
}

TEST(ReplayCoverage, FastReplayKindsAreFactoryKinds)
{
    // hasFastReplay() must agree with the registry entry flags, and
    // every fast kind must be a factory kind.
    const auto kinds = knownPredictorKinds();
    unsigned fast = 0;
    for (const PredictorKindInfo &info : predictorKindInfos()) {
        EXPECT_EQ(hasFastReplay(info.kind), info.fastReplay);
        EXPECT_NE(std::find(kinds.begin(), kinds.end(), info.kind),
                  kinds.end());
        fast += info.fastReplay ? 1 : 0;
    }
    // The static predictors and perceptron stay on the virtual loop;
    // everything else runs on the kernel.
    EXPECT_EQ(fast, kinds.size() - 4);
    EXPECT_TRUE(hasFastReplay("filter"));
    EXPECT_TRUE(hasFastReplay("gag"));
    EXPECT_FALSE(hasFastReplay("perceptron"));
    EXPECT_FALSE(hasFastReplay("no-such-kind"));
}

class ReplayEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ReplayEquivalence, CountsAndStateMatchVirtualLoop)
{
    const std::string &config = GetParam();
    PredictorPtr reference = makePredictor(config);
    PredictorPtr candidate = makePredictor(config);

    // Two passes, no reset between them: pass 2 only matches if pass
    // 1 left both predictors in identical state.
    for (int pass = 1; pass <= 2; ++pass) {
        auto reference_reader = sharedTrace().reader();
        const SimResult expected =
            simulate(*reference, reference_reader);
        auto candidate_reader = sharedTrace().reader();
        const SimResult actual = simulateAny(
            *candidate, candidate_reader, &sharedPacked());

        EXPECT_EQ(actual.branches, expected.branches)
            << config << " pass " << pass;
        EXPECT_EQ(actual.mispredictions, expected.mispredictions)
            << config << " pass " << pass;
        EXPECT_EQ(actual.takenBranches, expected.takenBranches)
            << config << " pass " << pass;
        EXPECT_EQ(actual.predictorName, expected.predictorName);
    }
}

TEST_P(ReplayEquivalence, WarmupMatchesVirtualLoop)
{
    const std::string &config = GetParam();
    PredictorPtr reference = makePredictor(config);
    PredictorPtr candidate = makePredictor(config);

    SimConfig sim_config;
    sim_config.warmupBranches = 500;
    auto reference_reader = sharedTrace().reader();
    const SimResult expected =
        simulate(*reference, reference_reader, sim_config);
    auto candidate_reader = sharedTrace().reader();
    const SimResult actual = simulateAny(
        *candidate, candidate_reader, &sharedPacked(), sim_config);

    EXPECT_EQ(actual.branches, expected.branches) << config;
    EXPECT_EQ(actual.mispredictions, expected.mispredictions) << config;
    EXPECT_EQ(actual.takenBranches, expected.takenBranches) << config;
}

TEST_P(ReplayEquivalence, PerBranchTrackingFallsBackIdentically)
{
    const std::string &config = GetParam();
    PredictorPtr reference = makePredictor(config);
    PredictorPtr candidate = makePredictor(config);

    SimConfig sim_config;
    sim_config.trackPerBranch = true;
    auto reference_reader = sharedTrace().reader();
    const SimResult expected =
        simulate(*reference, reference_reader, sim_config);
    auto candidate_reader = sharedTrace().reader();
    const SimResult actual = simulateAny(
        *candidate, candidate_reader, &sharedPacked(), sim_config);

    EXPECT_EQ(actual.mispredictions, expected.mispredictions) << config;
    ASSERT_EQ(actual.perBranch.size(), expected.perBranch.size());
    for (std::size_t i = 0; i < actual.perBranch.size(); ++i) {
        EXPECT_EQ(actual.perBranch[i].pc, expected.perBranch[i].pc);
        EXPECT_EQ(actual.perBranch[i].mispredictions,
                  expected.perBranch[i].mispredictions);
        EXPECT_EQ(actual.perBranch[i].executions,
                  expected.perBranch[i].executions);
        EXPECT_EQ(actual.perBranch[i].takenCount,
                  expected.perBranch[i].takenCount);
    }
}

std::string
specTestName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name;
    for (const char c : info.param) {
        name.push_back(
            std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ReplayEquivalence,
                         ::testing::ValuesIn(kAllKindSpecs),
                         specTestName);

TEST(ReplayKernelEdge, WarmupLargerThanTraceMeasuresNothing)
{
    PredictorPtr reference = makePredictor("bimode:d=7");
    PredictorPtr candidate = makePredictor("bimode:d=7");
    SimConfig sim_config;
    sim_config.warmupBranches = sharedPacked().size() + 1000;

    auto reference_reader = sharedTrace().reader();
    const SimResult expected =
        simulate(*reference, reference_reader, sim_config);
    auto candidate_reader = sharedTrace().reader();
    const SimResult actual = simulateAny(
        *candidate, candidate_reader, &sharedPacked(), sim_config);

    EXPECT_EQ(expected.branches, 0u);
    EXPECT_EQ(actual.branches, 0u);
    EXPECT_EQ(actual.mispredictions, expected.mispredictions);
}

TEST(ReplayDispatch, NullPackedUsesVirtualPath)
{
    PredictorPtr reference = makePredictor("gshare:n=8");
    PredictorPtr candidate = makePredictor("gshare:n=8");
    auto reference_reader = sharedTrace().reader();
    const SimResult expected = simulate(*reference, reference_reader);
    auto candidate_reader = sharedTrace().reader();
    const SimResult actual =
        simulateAny(*candidate, candidate_reader, nullptr);
    EXPECT_EQ(actual.mispredictions, expected.mispredictions);
    EXPECT_EQ(actual.branches, expected.branches);
}

TEST(ReplayCampaign, PackedAndUnpackedCampaignsSerializeIdentically)
{
    TraceCache cache;
    std::vector<BenchmarkTrace> benchmarks =
        resolveTraces(cache, {replaySpec()});
    ASSERT_EQ(benchmarks.size(), 1u);
    ASSERT_NE(benchmarks[0].packed, nullptr);

    const std::vector<std::string> configs = {
        "bimode:d=7", "gshare:n=8", "perceptron:n=5,h=12",
        "not-a-kind"};

    Campaign packed_campaign;
    packed_campaign.addGrid(configs, benchmarks);

    std::vector<BenchmarkTrace> unpacked = benchmarks;
    unpacked[0].packed = nullptr;
    Campaign virtual_campaign;
    virtual_campaign.addGrid(configs, unpacked);

    const auto packed_results = packed_campaign.run(1);
    const auto virtual_results = virtual_campaign.run(1);

    // Default serialization excludes timing, so the two runs must be
    // byte-identical — the emitter-level form of the bit-identity
    // contract (including the error row for the bad config).
    std::ostringstream packed_json, virtual_json;
    writeResultsJson(packed_json, packed_results);
    writeResultsJson(virtual_json, virtual_results);
    EXPECT_EQ(packed_json.str(), virtual_json.str());
}

TEST(ReplayTiming, TimingIsCapturedButNotSerializedByDefault)
{
    PredictorPtr predictor = makePredictor("bimode:d=7");
    auto reader = sharedTrace().reader();
    const SimResult result =
        simulateAny(*predictor, reader, &sharedPacked());
    EXPECT_GT(result.wallNanos, 0u);
    EXPECT_GT(result.branchesPerSec(), 0.0);

    std::ostringstream plain, timed;
    result.toJson(plain);
    result.toJson(timed, /*withTiming=*/true);
    EXPECT_EQ(plain.str().find("wallNanos"), std::string::npos);
    EXPECT_NE(timed.str().find("wallNanos"), std::string::npos);
    EXPECT_NE(timed.str().find("branchesPerSec"), std::string::npos);
}

} // namespace
} // namespace bpsim
