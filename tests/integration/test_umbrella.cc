/** @file Compiles the umbrella header and exercises one call through
 *  each subsystem it exposes. */

#include <gtest/gtest.h>

#include "bpsim.hh"

namespace bpsim
{
namespace
{

TEST(Umbrella, EverySubsystemReachable)
{
    // Workload.
    WorkloadSpec spec;
    spec.name = "umbrella";
    spec.staticBranches = 50;
    spec.dynamicBranches = 5000;
    spec.seed = 5;
    const MemoryTrace trace = generateWorkloadTrace(spec);
    EXPECT_EQ(trace.size(), 5000u);

    // Predictor via the factory, simulation, analysis.
    const PredictorPtr predictor = makePredictor("bimode:d=6");
    auto reader = trace.reader();
    const SimResult result = simulate(*predictor, reader);
    EXPECT_EQ(result.branches, 5000u);

    auto reader2 = trace.reader();
    BiModePredictor analysis_target(BiModeConfig::canonical(6));
    BiasAnalysis analysis(analysis_target, reader2);
    analysis.run();
    EXPECT_GT(analysis.counterProfile().activeCounters, 0u);

    // Front-end substrates.
    BranchTargetBuffer btb(BtbConfig{});
    btb.update(0x1000, 0x2000, true);
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
    ReturnAddressStack ras(8);
    ras.pushCall(0x1000);
    EXPECT_EQ(ras.popReturn(0x1004), 0x1004u);

    // Pipeline model.
    EXPECT_GT(PipelineModel{}.ipcAt(result.mispredictionRate()), 0.0);
}

} // namespace
} // namespace bpsim
