/**
 * @file End-to-end integration tests: workloads through predictors
 * through analysis, checking the paper's headline claims hold on the
 * synthetic suite, plus cross-module plumbing (file round trips).
 *
 * These use reduced dynamic counts so the whole suite stays fast;
 * the full-size numbers live in the bench/ binaries.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/bias_analysis.hh"
#include "core/bimode.hh"
#include "core/factory.hh"
#include "predictors/gshare.hh"
#include "sim/gshare_sweep.hh"
#include "sim/simulator.hh"
#include "trace/binary_io.hh"
#include "workload/benchmarks.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

/** A reduced-size benchmark trace for fast integration checks. */
MemoryTrace
reducedTrace(const std::string &name, std::uint64_t dynamic)
{
    auto spec = findBenchmark(name);
    EXPECT_TRUE(spec.has_value());
    spec->dynamicBranches = dynamic;
    return generateWorkloadTrace(*spec);
}

double
mispredictOn(const MemoryTrace &trace, const std::string &config)
{
    const PredictorPtr predictor = makePredictor(config);
    auto reader = trace.reader();
    return simulate(*predictor, reader).mispredictionRate();
}

TEST(EndToEnd, BiModeBeatsEqualCostGshareOnGcc)
{
    // The headline claim at the 1-2KB region: bi-mode at 1.5KB
    // (d=11) must beat gshare at 2KB (n=13) — more accuracy from
    // less hardware.
    const MemoryTrace trace = reducedTrace("gcc", 800'000);
    const double bimode = mispredictOn(trace, "bimode:d=11");
    const double gshare = mispredictOn(trace, "gshare:n=13");
    EXPECT_LT(bimode, gshare);
}

TEST(EndToEnd, BiModeBeatsSingleAndMultiPhtOnAverage)
{
    // Figure 2's ordering on a three-benchmark sample.
    double bimode_avg = 0, pht1_avg = 0, multi_avg = 0;
    for (const char *name : {"gcc", "vortex", "perl"}) {
        const MemoryTrace trace = reducedTrace(name, 600'000);
        bimode_avg += mispredictOn(trace, "bimode:d=11");
        pht1_avg += mispredictOn(trace, "gshare:n=12,h=12");
        multi_avg += mispredictOn(trace, "gshare:n=12,h=9");
    }
    EXPECT_LT(bimode_avg, pht1_avg);
    EXPECT_LT(bimode_avg, multi_avg);
}

TEST(EndToEnd, LongHistoryWinsOnCompress)
{
    // The paper's compress exception: among gshare configurations
    // the single-PHT (full-history) point is best at large sizes.
    const MemoryTrace trace = reducedTrace("compress", 1'000'000);
    const auto sweep = sweepGshare(14, {&trace}, 6);
    EXPECT_GE(sweep.best().historyBits, 12u)
        << "compress must favour long history";
}

TEST(EndToEnd, ShortHistoryWinsOnGccAtSmallSizes)
{
    // gcc at 0.25KB: 16k branches over 1k counters — the sweep must
    // prefer a multi-PHT (short history) configuration.
    const MemoryTrace trace = reducedTrace("gcc", 800'000);
    const auto sweep = sweepGshare(10, {&trace});
    EXPECT_LT(sweep.best().historyBits, 10u);
}

TEST(EndToEnd, GoIsTheHardestBenchmark)
{
    const MemoryTrace go = reducedTrace("go", 600'000);
    const MemoryTrace vortex = reducedTrace("vortex", 600'000);
    const double go_rate = mispredictOn(go, "bimode:d=13");
    const double vortex_rate = mispredictOn(vortex, "bimode:d=13");
    EXPECT_GT(go_rate, 2.0 * vortex_rate);
}

TEST(EndToEnd, BiasProfileBiModeReducesNonDominant)
{
    // Figure 5 vs Figure 6: at matched sizes, bi-mode's direction
    // counters see a smaller non-dominant share than the
    // history-indexed gshare's counters, while keeping WB in check.
    const MemoryTrace trace = reducedTrace("gcc", 800'000);

    GsharePredictor gshare(8, 8);
    auto reader1 = trace.reader();
    BiasAnalysis gshare_analysis(gshare, reader1);
    gshare_analysis.run();
    const CounterProfile gshare_profile =
        gshare_analysis.counterProfile();

    BiModeConfig cfg;
    cfg.directionIndexBits = 7;
    cfg.choiceIndexBits = 7;
    cfg.historyBits = 7;
    BiModePredictor bimode(cfg);
    auto reader2 = trace.reader();
    BiasAnalysis bimode_analysis(bimode, reader2);
    bimode_analysis.run();
    const CounterProfile bimode_profile =
        bimode_analysis.counterProfile();

    EXPECT_LT(bimode_profile.trafficNonDominantShare,
              gshare_profile.trafficNonDominantShare);
}

TEST(EndToEnd, BiModeReducesClassTransitions)
{
    // Table 4: the bi-mode scheme shows fewer ST/SNT interminglings
    // than the history-indexed scheme.
    const MemoryTrace trace = reducedTrace("gcc", 500'000);

    GsharePredictor gshare(8, 8);
    auto reader1 = trace.reader();
    BiasAnalysis gshare_analysis(gshare, reader1);
    gshare_analysis.run();
    const TransitionCounts gshare_counts =
        gshare_analysis.countTransitions();

    BiModeConfig cfg;
    cfg.directionIndexBits = 7;
    cfg.choiceIndexBits = 7;
    cfg.historyBits = 7;
    BiModePredictor bimode(cfg);
    auto reader2 = trace.reader();
    BiasAnalysis bimode_analysis(bimode, reader2);
    bimode_analysis.run();
    const TransitionCounts bimode_counts =
        bimode_analysis.countTransitions();

    EXPECT_LT(bimode_counts.nonDominant, gshare_counts.nonDominant);
}

TEST(EndToEnd, TraceFileRoundTripPreservesSimResults)
{
    const std::string path = ::testing::TempDir() + "e2e_roundtrip.bbt";
    const MemoryTrace original = reducedTrace("perl", 200'000);
    {
        auto reader = original.reader();
        writeBinaryTrace(reader, path);
    }
    MemoryTrace loaded;
    readBinaryTrace(path, loaded);

    BiModePredictor a(BiModeConfig::canonical(10));
    BiModePredictor b(BiModeConfig::canonical(10));
    auto reader_a = original.reader();
    auto reader_b = loaded.reader();
    const SimResult result_a = simulate(a, reader_a);
    const SimResult result_b = simulate(b, reader_b);
    EXPECT_EQ(result_a.mispredictions, result_b.mispredictions);
    EXPECT_EQ(result_a.branches, result_b.branches);
    std::remove(path.c_str());
}

TEST(EndToEnd, AnalysisStreamsCoverEveryBranch)
{
    const MemoryTrace trace = reducedTrace("xlisp", 300'000);
    BiModePredictor predictor(BiModeConfig::canonical(9));
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    EXPECT_EQ(analysis.streams().totalObservations(), trace.size());
    // Traffic shares over the profile must partition all traffic.
    const CounterProfile profile = analysis.counterProfile();
    EXPECT_NEAR(profile.trafficWbShare + profile.trafficDominantShare +
                    profile.trafficNonDominantShare,
                1.0, 1e-9);
}

TEST(EndToEnd, PartialUpdateAblationMatters)
{
    // The paper calls the partial update "particularly effective
    // when the total hardware budget is small": full update must not
    // beat the paper policy on an aliasing-heavy benchmark at small
    // size.
    const MemoryTrace trace = reducedTrace("gcc", 800'000);
    const double partial = mispredictOn(trace, "bimode:d=9");
    const double full = mispredictOn(trace, "bimode:d=9,partial=0");
    EXPECT_LT(partial, full);
}

TEST(EndToEnd, EveryBenchmarkRunsThroughEveryPredictorKind)
{
    // Smoke coverage: all 14 workloads x all predictor kinds.
    const std::vector<std::string> configs = {
        "bimodal:n=10", "gshare:n=10", "bimode:d=9", "agree:n=10",
        "gskew:n=9",    "yags:c=10,n=8", "tournament:n=9",
        "gas:h=6,a=4",  "pas:h=6,l=8,a=2"};
    for (const auto &spec : allBenchmarks()) {
        WorkloadSpec reduced = spec;
        reduced.dynamicBranches = 60'000;
        const MemoryTrace trace = generateWorkloadTrace(reduced);
        for (const std::string &config : configs) {
            const PredictorPtr predictor = makePredictor(config);
            auto reader = trace.reader();
            const SimResult result = simulate(*predictor, reader);
            EXPECT_EQ(result.branches, trace.size())
                << spec.name << " / " << config;
            EXPECT_LT(result.mispredictionRate(), 60.0)
                << spec.name << " / " << config;
        }
    }
}

} // namespace
} // namespace bpsim
