/**
 * @file
 * Seeded fuzz tests: random-but-valid predictor configurations
 * driven by random branch streams, checking the interface contract
 * (no crashes, detail invariants, simulate() equivalence) holds far
 * from the hand-picked configurations the unit tests use.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/factory.hh"
#include "sim/simulator.hh"
#include "trace/memory_trace.hh"
#include "util/random.hh"

namespace bpsim
{
namespace
{

/** Draws a random valid configuration string. */
std::string
randomConfig(Rng &rng)
{
    std::ostringstream os;
    switch (rng.nextBounded(10)) {
      case 0:
        os << "bimodal:n=" << rng.nextRange(2, 14);
        break;
      case 1: {
        const auto n = rng.nextRange(2, 14);
        os << "gshare:n=" << n << ",h=" << rng.nextRange(0, n);
        break;
      }
      case 2: {
        const auto d = rng.nextRange(2, 13);
        os << "bimode:d=" << d << ",c=" << rng.nextRange(2, 14)
           << ",h=" << rng.nextRange(0, d)
           << ",partial=" << rng.nextBounded(2)
           << ",alwayschoice=" << rng.nextBounded(2);
        break;
      }
      case 3: {
        const auto n = rng.nextRange(2, 13);
        os << "agree:n=" << n << ",h=" << rng.nextRange(0, n)
           << ",b=" << rng.nextRange(2, 14);
        break;
      }
      case 4:
        os << "gskew:n=" << rng.nextRange(2, 12)
           << ",partial=" << rng.nextBounded(2);
        break;
      case 5: {
        const auto n = rng.nextRange(2, 11);
        os << "yags:c=" << rng.nextRange(2, 13) << ",n=" << n
           << ",t=" << rng.nextRange(1, 12)
           << ",h=" << rng.nextRange(0, n);
        break;
      }
      case 6:
        os << "tournament:n=" << rng.nextRange(2, 12);
        break;
      case 7:
        os << "perceptron:n=" << rng.nextRange(1, 8)
           << ",h=" << rng.nextRange(1, 40)
           << ",w=" << rng.nextRange(2, 12);
        break;
      case 8: {
        const auto h = rng.nextRange(1, 10);
        os << "gas:h=" << h << ",a=" << rng.nextRange(0, 6);
        break;
      }
      default: {
        const auto h = rng.nextRange(1, 8);
        os << "pas:h=" << h << ",l=" << rng.nextRange(1, 10)
           << ",a=" << rng.nextRange(0, 6);
        break;
      }
    }
    return os.str();
}

MemoryTrace
randomTrace(Rng &rng, std::size_t n)
{
    MemoryTrace trace;
    for (std::size_t i = 0; i < n; ++i) {
        BranchRecord record;
        record.pc = 0x400000 + 4 * rng.nextBounded(1u << 14);
        record.target = record.pc + 4 * rng.nextRange(-200, 200);
        record.type = BranchType::Conditional;
        record.taken = rng.nextBool(0.6);
        trace.append(record);
    }
    return trace;
}

TEST(Fuzz, RandomConfigsSurviveRandomStreams)
{
    Rng rng(0xf022);
    for (int round = 0; round < 150; ++round) {
        const std::string config = randomConfig(rng);
        SCOPED_TRACE(config);
        const PredictorPtr predictor = makePredictor(config);
        const std::uint64_t counters = predictor->directionCounters();
        Rng stream_rng = rng.split();
        for (int i = 0; i < 1500; ++i) {
            const std::uint64_t pc =
                0x400000 + 4 * stream_rng.nextBounded(4096);
            const PredictionDetail detail =
                predictor->predictDetailed(pc);
            if (detail.usesCounter) {
                ASSERT_GT(counters, 0u);
                ASSERT_LT(detail.counterId, counters);
            }
            predictor->observeTarget(pc, pc + 64);
            predictor->update(pc, stream_rng.nextBool(0.55));
        }
        EXPECT_LE(predictor->counterBits(), predictor->storageBits());
    }
}

TEST(Fuzz, SimulateMatchesManualLoop)
{
    // simulate() must agree exactly with a hand-rolled
    // predict/observe/update loop for any predictor kind.
    Rng rng(0xd1ff);
    for (int round = 0; round < 40; ++round) {
        const std::string config = randomConfig(rng);
        SCOPED_TRACE(config);
        Rng trace_rng = rng.split();
        const MemoryTrace trace = randomTrace(trace_rng, 4000);

        const PredictorPtr by_sim = makePredictor(config);
        auto reader = trace.reader();
        const SimResult result = simulate(*by_sim, reader);

        const PredictorPtr by_hand = makePredictor(config);
        std::uint64_t wrong = 0;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            const BranchRecord &record = trace[i];
            wrong += by_hand->predict(record.pc) != record.taken;
            by_hand->observeTarget(record.pc, record.target);
            by_hand->update(record.pc, record.taken);
        }
        ASSERT_EQ(result.mispredictions, wrong);
        ASSERT_EQ(result.branches, trace.size());
    }
}

TEST(Fuzz, ResetAfterAnyWorkloadIsClean)
{
    Rng rng(0xc1ea);
    for (int round = 0; round < 40; ++round) {
        const std::string config = randomConfig(rng);
        SCOPED_TRACE(config);
        const PredictorPtr worked = makePredictor(config);
        const PredictorPtr fresh = makePredictor(config);
        Rng stream_rng = rng.split();
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t pc =
                0x400000 + 4 * stream_rng.nextBounded(2048);
            worked->observeTarget(pc, pc + 32);
            worked->update(pc, stream_rng.nextBool(0.5));
        }
        worked->reset();
        for (std::uint64_t pc = 0x400000; pc < 0x400400; pc += 4)
            ASSERT_EQ(worked->predict(pc), fresh->predict(pc)) << pc;
    }
}

} // namespace
} // namespace bpsim
