/** @file Hard-to-predict (H2P) report tests.
 *
 * Covers the ranking/coverage semantics of buildH2PReport(), the
 * H2P-set intersection, the emitters, and the serialized round trip:
 * SimResult -> toJson (with perBranch) -> parseSimResultJson ->
 * byte-identical report, which is the contract the campaign-service
 * client's --h2p mode rides on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/h2p.hh"
#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "core/factory.hh"
#include "sim/replay.hh"
#include "trace/packed_trace.hh"
#include "workload/generator.hh"

namespace bpsim
{
namespace
{

PerBranchResult
row(std::uint64_t pc, std::uint64_t executions,
    std::uint64_t mispredictions, std::uint64_t takenCount)
{
    PerBranchResult r;
    r.pc = pc;
    r.executions = executions;
    r.mispredictions = mispredictions;
    r.takenCount = takenCount;
    return r;
}

/** A small synthetic result: 100 mispredictions over 4 branches. */
SimResult
syntheticResult()
{
    SimResult result;
    result.predictorName = "toy";
    result.benchmark = "bench";
    result.configText = "toy:n=1";
    result.branches = 2000;
    result.mispredictions = 100;
    result.takenBranches = 1100;
    result.perBranch.push_back(row(0x100, 1000, 10, 950)); // ST
    result.perBranch.push_back(row(0x200, 500, 60, 250));  // WB
    result.perBranch.push_back(row(0x300, 400, 25, 30));   // SNT
    result.perBranch.push_back(row(0x400, 100, 5, 50));    // WB
    return result;
}

TEST(H2PReport, RanksByMispredictionsAndCutsCoverage)
{
    const H2PReport report = buildH2PReport(syntheticResult(), 0.85);
    ASSERT_EQ(report.staticBranches(), 4u);
    EXPECT_EQ(report.totalBranches, 2000u);
    EXPECT_EQ(report.totalMispredictions, 100u);

    // Sorted by misses descending: 60, 25, 10, 5.
    EXPECT_EQ(report.branches[0].pc, 0x200u);
    EXPECT_EQ(report.branches[1].pc, 0x300u);
    EXPECT_EQ(report.branches[2].pc, 0x100u);
    EXPECT_EQ(report.branches[3].pc, 0x400u);

    // 60 covers 60%, +25 covers 85% — exactly the target.
    EXPECT_EQ(report.h2pCount, 2u);
    EXPECT_DOUBLE_EQ(report.coverageOfTop(2), 85.0);
    EXPECT_DOUBLE_EQ(report.branches[0].missShare, 60.0);

    // Bias classes ride along from the taken ratios.
    EXPECT_EQ(report.branches[0].biasClass, BiasClass::WeaklyBiased);
    EXPECT_EQ(report.branches[1].biasClass,
              BiasClass::StronglyNotTaken);
    EXPECT_EQ(report.branches[2].biasClass, BiasClass::StronglyTaken);

    // Accuracy per branch: 60/500 missed -> 88%.
    EXPECT_DOUBLE_EQ(report.branches[0].accuracy(), 88.0);
}

TEST(H2PReport, TiesBreakByAscendingPc)
{
    SimResult result;
    result.mispredictions = 30;
    result.branches = 300;
    result.perBranch.push_back(row(0x900, 100, 10, 50));
    result.perBranch.push_back(row(0x100, 100, 10, 50));
    result.perBranch.push_back(row(0x500, 100, 10, 50));
    const H2PReport report = buildH2PReport(result, 0.9);
    EXPECT_EQ(report.branches[0].pc, 0x100u);
    EXPECT_EQ(report.branches[1].pc, 0x500u);
    EXPECT_EQ(report.branches[2].pc, 0x900u);
}

TEST(H2PReport, NoMispredictionsMeansEmptyH2PSet)
{
    SimResult result;
    result.branches = 100;
    result.mispredictions = 0;
    result.perBranch.push_back(row(0x100, 100, 0, 100));
    const H2PReport report = buildH2PReport(result, 0.9);
    EXPECT_EQ(report.h2pCount, 0u);
    EXPECT_DOUBLE_EQ(report.branches[0].missShare, 0.0);
    EXPECT_DOUBLE_EQ(report.coverageOfTop(1), 0.0);
}

TEST(H2PSets, IntersectionAndJaccard)
{
    SimResult a = syntheticResult();
    const H2PReport reportA = buildH2PReport(a, 0.85); // {200, 300}

    SimResult b;
    b.branches = 1000;
    b.mispredictions = 50;
    b.perBranch.push_back(row(0x300, 400, 30, 30));
    b.perBranch.push_back(row(0x700, 300, 15, 150));
    b.perBranch.push_back(row(0x100, 300, 5, 290));
    const H2PReport reportB = buildH2PReport(b, 0.9); // {300, 700}

    const H2PSetComparison cmp = compareH2PSets(reportA, reportB);
    EXPECT_EQ(cmp.countA, 2u);
    EXPECT_EQ(cmp.countB, 2u);
    EXPECT_EQ(cmp.shared, 1u); // 0x300
    EXPECT_DOUBLE_EQ(cmp.jaccard, 1.0 / 3.0);
}

TEST(H2PSets, EmptySetsCompareCleanly)
{
    SimResult empty;
    const H2PReport report = buildH2PReport(empty, 0.9);
    const H2PSetComparison cmp = compareH2PSets(report, report);
    EXPECT_EQ(cmp.shared, 0u);
    EXPECT_DOUBLE_EQ(cmp.jaccard, 0.0);
}

TEST(H2PEmitters, CsvMarksTheH2PPrefix)
{
    const H2PReport report = buildH2PReport(syntheticResult(), 0.85);
    std::ostringstream os;
    writeH2PCsv(os, report);
    std::istringstream lines(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line,
              "rank,pc,executions,mispredictions,taken,accuracy,"
              "missShare,bias,h2p");
    int rows = 0, flagged = 0;
    while (std::getline(lines, line)) {
        ++rows;
        if (line.size() >= 2 && line.substr(line.size() - 2) == ",1")
            ++flagged;
    }
    EXPECT_EQ(rows, 4);
    EXPECT_EQ(flagged, 2);
}

TEST(H2PEmitters, TableAndJsonRespectRowBounds)
{
    const H2PReport report = buildH2PReport(syntheticResult(), 0.85);
    std::ostringstream table;
    writeH2PTable(table, report, 2);
    EXPECT_NE(table.str().find("512"), std::string::npos); // pc 0x200
    EXPECT_EQ(table.str().find("1024"), std::string::npos); // pc 0x400

    std::ostringstream json;
    writeH2PJson(json, report, 1);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"h2pCount\":2"), std::string::npos);
    EXPECT_NE(text.find("\"pc\":512"), std::string::npos);
    EXPECT_EQ(text.find("\"pc\":768"), std::string::npos);
}

TEST(H2PParse, RoundTripsToJsonWithPerBranch)
{
    const SimResult original = syntheticResult();
    std::ostringstream os;
    original.toJson(os);
    std::string error;
    const auto parsed = parseSimResultJson(os.str(), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->predictorName, original.predictorName);
    EXPECT_EQ(parsed->benchmark, original.benchmark);
    EXPECT_EQ(parsed->branches, original.branches);
    EXPECT_EQ(parsed->mispredictions, original.mispredictions);
    ASSERT_EQ(parsed->perBranch.size(), original.perBranch.size());
    for (std::size_t i = 0; i < original.perBranch.size(); ++i) {
        EXPECT_EQ(parsed->perBranch[i].pc, original.perBranch[i].pc);
        EXPECT_EQ(parsed->perBranch[i].executions,
                  original.perBranch[i].executions);
        EXPECT_EQ(parsed->perBranch[i].mispredictions,
                  original.perBranch[i].mispredictions);
        EXPECT_EQ(parsed->perBranch[i].takenCount,
                  original.perBranch[i].takenCount);
    }
}

TEST(H2PParse, AcceptsCampaignPayloadWrapper)
{
    JobResult job;
    job.benchmark = "bench";
    job.configText = "toy:n=1";
    job.result = syntheticResult();
    std::ostringstream os;
    writeResultJson(os, job, /*withTiming=*/false);
    std::string error;
    const auto parsed = parseSimResultJson(os.str(), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->predictorName, "toy");
    EXPECT_EQ(parsed->perBranch.size(), 4u);
}

TEST(H2PParse, FailedJobPayloadIsAnError)
{
    JobResult job;
    job.benchmark = "bench";
    job.configText = "toy:oops";
    job.error = "bad config";
    std::ostringstream os;
    writeResultJson(os, job, /*withTiming=*/false);
    std::string error;
    const auto parsed = parseSimResultJson(os.str(), error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_NE(error.find("bad config"), std::string::npos);
}

TEST(H2PParse, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseSimResultJson("not json", error).has_value());
    EXPECT_FALSE(parseSimResultJson("[1,2]", error).has_value());
    EXPECT_FALSE(
        parseSimResultJson("{\"perBranch\":42}", error).has_value());
}

TEST(H2PSerialization, UntrackedResultsOmitPerBranchKey)
{
    SimResult result = syntheticResult();
    result.perBranch.clear();
    std::ostringstream os;
    result.toJson(os);
    EXPECT_EQ(os.str().find("perBranch"), std::string::npos);
}

/** End to end: probed replay -> report; totals and shares line up. */
TEST(H2PEndToEnd, ReportMatchesProbedRun)
{
    WorkloadSpec spec;
    spec.name = "h2p-e2e";
    spec.suite = "test";
    spec.staticBranches = 150;
    spec.dynamicBranches = 20'000;
    spec.seed = 77;
    const MemoryTrace trace = generateWorkloadTrace(spec);
    const PackedTrace packed(trace);

    PredictorPtr predictor = makePredictor("bimode:d=8");
    auto reader = trace.reader();
    SimConfig simConfig;
    simConfig.trackPerBranch = true;
    const SimResult result =
        simulateAny(*predictor, reader, &packed, simConfig);
    ASSERT_FALSE(result.perBranch.empty());

    const H2PReport report = buildH2PReport(result, 0.9);
    EXPECT_EQ(report.totalMispredictions, result.mispredictions);
    EXPECT_EQ(report.staticBranches(), result.perBranch.size());
    EXPECT_GT(report.h2pCount, 0u);
    EXPECT_LE(report.h2pCount, report.staticBranches());
    EXPECT_GE(report.coverageOfTop(report.h2pCount), 90.0);
    if (report.h2pCount > 1) {
        EXPECT_LT(report.coverageOfTop(report.h2pCount - 1), 90.0);
    }
    double shares = 0.0;
    for (const H2PBranch &branch : report.branches)
        shares += branch.missShare;
    EXPECT_NEAR(shares, 100.0, 1e-6);

    // A report is equal to itself under comparison.
    const H2PSetComparison self = compareH2PSets(report, report);
    EXPECT_EQ(self.shared, report.h2pCount);
    EXPECT_DOUBLE_EQ(self.jaccard, 1.0);
}

} // namespace
} // namespace bpsim
