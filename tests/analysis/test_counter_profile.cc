/** @file Tests for per-counter bias profiles, including the paper's
 *  Table 3 worked example. */

#include <gtest/gtest.h>

#include "analysis/counter_profile.hh"

namespace bpsim
{
namespace
{

TEST(CounterProfile, Table3WorkedExample)
{
    // Paper Table 3: four streams incident on the same counter c.
    //   0x001: 12 outcomes, 11 taken  -> ST,  N = 24%
    //   0x005: 20 outcomes,  1 taken  -> SNT, N = 40%
    //   0x100:  8 outcomes,  3 taken  -> WB,  N = 16%
    //   0x150: 10 outcomes,  1 taken  -> SNT, N = 20%
    StreamTracker tracker;
    auto feed = [&](std::uint64_t pc, int total, int taken) {
        for (int i = 0; i < total; ++i)
            tracker.observe(pc, 0, i < taken, false);
    };
    feed(0x001, 12, 11);
    feed(0x005, 20, 1);
    feed(0x100, 8, 3);
    feed(0x150, 10, 1);

    // Verify the stream classes first.
    EXPECT_EQ(tracker.find(0x001, 0)->biasClass(),
              BiasClass::StronglyTaken);
    EXPECT_EQ(tracker.find(0x005, 0)->biasClass(),
              BiasClass::StronglyNotTaken);
    EXPECT_EQ(tracker.find(0x100, 0)->biasClass(),
              BiasClass::WeaklyBiased);
    EXPECT_EQ(tracker.find(0x150, 0)->biasClass(),
              BiasClass::StronglyNotTaken);

    const CounterProfile profile = buildCounterProfile(tracker, 1);
    ASSERT_EQ(profile.counters.size(), 1u);
    const CounterBias &c = profile.counters[0];
    EXPECT_EQ(c.total, 50u);
    // Normalized counts from the paper: ST 24%, SNT 60%, WB 16%.
    EXPECT_NEAR(c.stShare(), 0.24, 1e-12);
    EXPECT_NEAR(c.sntShare(), 0.60, 1e-12);
    EXPECT_NEAR(c.wbShare(), 0.16, 1e-12);
    // "the SNT is the dominant class in the counter c, and the ST is
    // the non-dominant class".
    EXPECT_EQ(c.dominantClass(), BiasClass::StronglyNotTaken);
    EXPECT_NEAR(c.dominantShare(), 0.60, 1e-12);
    EXPECT_NEAR(c.nonDominantShare(), 0.24, 1e-12);
}

TEST(CounterProfile, IdleCountersExcluded)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 3, true, false);
    const CounterProfile profile = buildCounterProfile(tracker, 8);
    EXPECT_EQ(profile.activeCounters, 1u);
    EXPECT_EQ(profile.counters.size(), 1u);
    EXPECT_EQ(profile.counters[0].counterId, 3u);
}

TEST(CounterProfile, SortedByWbShare)
{
    StreamTracker tracker;
    // Counter 0: pure ST traffic (WB share 0).
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x1000, 0, true, false);
    // Counter 1: pure WB traffic (WB share 1).
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x2000, 1, i % 2 == 0, false);
    // Counter 2: half ST half WB.
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x3000, 2, true, false);
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x4000, 2, i % 2 == 0, false);

    const CounterProfile profile = buildCounterProfile(tracker, 3);
    ASSERT_EQ(profile.counters.size(), 3u);
    EXPECT_EQ(profile.counters[0].counterId, 0u);
    EXPECT_EQ(profile.counters[1].counterId, 2u);
    EXPECT_EQ(profile.counters[2].counterId, 1u);
}

TEST(CounterProfile, MeanSharesAreAverages)
{
    StreamTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x1000, 0, true, false); // pure ST
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x2000, 1, i % 2 == 0, false); // pure WB
    const CounterProfile profile = buildCounterProfile(tracker, 2);
    EXPECT_NEAR(profile.meanWbShare, 0.5, 1e-12);
    EXPECT_NEAR(profile.meanDominantShare, 0.5, 1e-12);
    EXPECT_NEAR(profile.meanNonDominantShare, 0.0, 1e-12);
}

TEST(CounterProfile, TrafficSharesWeightByVolume)
{
    StreamTracker tracker;
    for (int i = 0; i < 30; ++i)
        tracker.observe(0x1000, 0, true, false); // 30 ST
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x2000, 1, i % 2 == 0, false); // 10 WB
    const CounterProfile profile = buildCounterProfile(tracker, 2);
    EXPECT_NEAR(profile.trafficWbShare, 0.25, 1e-12);
    EXPECT_NEAR(profile.trafficDominantShare, 0.75, 1e-12);
}

TEST(CounterProfile, SharesSumToOnePerCounter)
{
    StreamTracker tracker;
    StreamTracker &t = tracker;
    for (int i = 0; i < 25; ++i)
        t.observe(0x1000 + 8 * (i % 5), i % 3, i % 7 < 4, false);
    const CounterProfile profile = buildCounterProfile(tracker, 3);
    for (const CounterBias &c : profile.counters) {
        EXPECT_NEAR(c.stShare() + c.sntShare() + c.wbShare(), 1.0,
                    1e-12);
        EXPECT_NEAR(c.dominantShare() + c.nonDominantShare(),
                    c.stShare() + c.sntShare(), 1e-12);
    }
}

TEST(CounterProfileDeath, OutOfRangeCounterPanics)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 9, true, false);
    EXPECT_DEATH(buildCounterProfile(tracker, 4), "out of range");
}

TEST(CounterProfileDeath, ZeroCountersPanics)
{
    StreamTracker tracker;
    EXPECT_DEATH(buildCounterProfile(tracker, 0), "needs a predictor");
}

} // namespace
} // namespace bpsim
