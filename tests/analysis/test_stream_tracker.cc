/** @file Tests for the s_ij substream tracker. */

#include <gtest/gtest.h>

#include "analysis/stream_tracker.hh"

namespace bpsim
{
namespace
{

TEST(StreamTracker, AccumulatesOneStream)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 5, true, false);
    tracker.observe(0x1000, 5, true, true);
    tracker.observe(0x1000, 5, false, false);
    ASSERT_EQ(tracker.streamCount(), 1u);
    const StreamStats *stream = tracker.find(0x1000, 5);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->count, 3u);
    EXPECT_EQ(stream->takenCount, 2u);
    EXPECT_EQ(stream->mispredictions, 1u);
    EXPECT_EQ(stream->pc, 0x1000u);
    EXPECT_EQ(stream->counterId, 5u);
}

TEST(StreamTracker, SeparatesByCounter)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 5, true, false);
    tracker.observe(0x1000, 6, false, false);
    EXPECT_EQ(tracker.streamCount(), 2u);
    EXPECT_EQ(tracker.find(0x1000, 5)->takenCount, 1u);
    EXPECT_EQ(tracker.find(0x1000, 6)->takenCount, 0u);
}

TEST(StreamTracker, SeparatesByBranch)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 5, true, false);
    tracker.observe(0x2000, 5, true, false);
    EXPECT_EQ(tracker.streamCount(), 2u);
}

TEST(StreamTracker, FindMissReturnsNull)
{
    StreamTracker tracker;
    EXPECT_EQ(tracker.find(0x1000, 5), nullptr);
}

TEST(StreamTracker, TotalObservations)
{
    StreamTracker tracker;
    for (int i = 0; i < 7; ++i)
        tracker.observe(0x1000 + 8 * (i % 3), i % 4, true, false);
    EXPECT_EQ(tracker.totalObservations(), 7u);
}

TEST(StreamTracker, AllStreamsReturnsEverything)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 1, true, false);
    tracker.observe(0x2000, 2, false, false);
    tracker.observe(0x3000, 1, true, true);
    const auto streams = tracker.allStreams();
    EXPECT_EQ(streams.size(), 3u);
    std::uint64_t total = 0;
    for (const StreamStats *stream : streams)
        total += stream->count;
    EXPECT_EQ(total, tracker.totalObservations());
}

TEST(StreamTracker, StreamsOfCounterFilters)
{
    StreamTracker tracker;
    tracker.observe(0x1000, 1, true, false);
    tracker.observe(0x2000, 2, false, false);
    tracker.observe(0x3000, 1, true, true);
    const auto at1 = tracker.streamsOfCounter(1);
    EXPECT_EQ(at1.size(), 2u);
    EXPECT_TRUE(tracker.streamsOfCounter(9).empty());
}

TEST(StreamTracker, ClassificationThroughStats)
{
    StreamTracker tracker;
    for (int i = 0; i < 10; ++i)
        tracker.observe(0x1000, 0, i < 9, false);
    EXPECT_EQ(tracker.find(0x1000, 0)->biasClass(),
              BiasClass::StronglyTaken);
}

TEST(StreamTracker, NoKeyCollisionsAcrossLargeSpace)
{
    // pcs and counter ids chosen adversarially close must remain
    // distinct streams.
    StreamTracker tracker;
    tracker.observe(0x1000, 0x1, true, false);
    tracker.observe(0x1001, 0x0, true, false);
    tracker.observe((0x1000 << 1) | 1, 0x1, true, false);
    EXPECT_EQ(tracker.streamCount(), 3u);
}

} // namespace
} // namespace bpsim
