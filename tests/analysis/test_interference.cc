/** @file Tests for the aliasing-interference taxonomy. */

#include <gtest/gtest.h>

#include "analysis/interference.hh"
#include "core/bimode.hh"
#include "predictors/bimodal.hh"
#include "predictors/static_predictors.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(Interference, SingleBranchIsUnaliased)
{
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i)
        trace.append(cond(0x1000, true));
    BimodalPredictor predictor(6);
    auto reader = trace.reader();
    const InterferenceStats stats =
        measureInterference(predictor, reader);
    EXPECT_EQ(stats.totalLookups(), 100u);
    EXPECT_EQ(stats.unaliasedLookups, 100u);
    EXPECT_EQ(stats.aliasedLookups(), 0u);
}

TEST(Interference, SeparateCountersAreUnaliased)
{
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1004, false));
    }
    BimodalPredictor predictor(6);
    auto reader = trace.reader();
    const InterferenceStats stats =
        measureInterference(predictor, reader);
    EXPECT_EQ(stats.aliasedLookups(), 0u);
}

TEST(Interference, OppositeBiasCollisionIsDestructive)
{
    // Two opposite strong biases on one bimodal counter: once the
    // private shadows converge, every aliased lookup disagrees with
    // the private prediction and lands destructive.
    MemoryTrace trace;
    for (int i = 0; i < 200; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1040, false)); // aliases at 4 index bits
    }
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    const InterferenceStats stats =
        measureInterference(predictor, reader);
    EXPECT_GT(stats.aliasedLookups(), 350u);
    // The not-taken branch eats the damage (the weakly-taken counter
    // oscillates on its taken side); the taken branch is unharmed.
    EXPECT_GT(stats.destructive, 150u);
    EXPECT_GT(stats.destructive, stats.constructive);
}

TEST(Interference, SameBiasCollisionIsNeutral)
{
    // Two taken-biased branches sharing a counter never disturb each
    // other: aliased but neutral.
    MemoryTrace trace;
    for (int i = 0; i < 200; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1040, true));
    }
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    const InterferenceStats stats =
        measureInterference(predictor, reader);
    EXPECT_GT(stats.aliasedLookups(), 350u);
    EXPECT_EQ(stats.destructive, 0u);
    EXPECT_GT(stats.neutral, 350u);
}

TEST(Interference, BiModeNeutralizesOppositeBiases)
{
    MemoryTrace trace;
    for (int i = 0; i < 200; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1040, false));
    }

    BimodalPredictor bimodal(4);
    auto reader1 = trace.reader();
    const InterferenceStats before =
        measureInterference(bimodal, reader1);

    BiModeConfig cfg;
    cfg.directionIndexBits = 4;
    cfg.choiceIndexBits = 8;
    cfg.historyBits = 0;
    BiModePredictor bimode(cfg);
    auto reader2 = trace.reader();
    const InterferenceStats after =
        measureInterference(bimode, reader2);

    EXPECT_LT(after.destructive, before.destructive / 10)
        << "bi-mode must turn the destructive collision harmless";
}

TEST(Interference, PercentagesSumOverAliased)
{
    MemoryTrace trace;
    for (int i = 0; i < 120; ++i) {
        trace.append(cond(0x1000, i % 5 != 0));
        trace.append(cond(0x1040, i % 3 == 0));
    }
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    const InterferenceStats stats =
        measureInterference(predictor, reader);
    EXPECT_NEAR(stats.destructivePercent() + stats.neutralPercent() +
                    stats.constructivePercent(),
                stats.aliasedPercent(), 1e-9);
}

TEST(InterferenceDeath, RequiresCounters)
{
    MemoryTrace trace;
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    EXPECT_EXIT(measureInterference(predictor, reader),
                ::testing::ExitedWithCode(1), "exposes none");
}

} // namespace
} // namespace bpsim
