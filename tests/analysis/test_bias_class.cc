/** @file Tests for bias classification (paper §4.1 definitions). */

#include <gtest/gtest.h>

#include "analysis/bias_class.hh"

namespace bpsim
{
namespace
{

TEST(BiasClass, Names)
{
    EXPECT_STREQ(biasClassName(BiasClass::StronglyTaken), "ST");
    EXPECT_STREQ(biasClassName(BiasClass::StronglyNotTaken), "SNT");
    EXPECT_STREQ(biasClassName(BiasClass::WeaklyBiased), "WB");
}

TEST(BiasClass, NinetyPercentBoundaryIsInclusive)
{
    // "strongly taken (ST) if the outcomes are taken 90% of the time
    // or more".
    EXPECT_EQ(classifyStream(90, 100), BiasClass::StronglyTaken);
    EXPECT_EQ(classifyStream(89, 100), BiasClass::WeaklyBiased);
    EXPECT_EQ(classifyStream(10, 100), BiasClass::StronglyNotTaken);
    EXPECT_EQ(classifyStream(11, 100), BiasClass::WeaklyBiased);
}

TEST(BiasClass, PureStreams)
{
    EXPECT_EQ(classifyStream(100, 100), BiasClass::StronglyTaken);
    EXPECT_EQ(classifyStream(0, 100), BiasClass::StronglyNotTaken);
}

TEST(BiasClass, SingleOutcomeStreams)
{
    EXPECT_EQ(classifyStream(1, 1), BiasClass::StronglyTaken);
    EXPECT_EQ(classifyStream(0, 1), BiasClass::StronglyNotTaken);
}

TEST(BiasClass, EmptyStreamIsWeak)
{
    EXPECT_EQ(classifyStream(0, 0), BiasClass::WeaklyBiased);
}

TEST(BiasClass, CustomThreshold)
{
    EXPECT_EQ(classifyStream(80, 100, 0.8), BiasClass::StronglyTaken);
    EXPECT_EQ(classifyStream(79, 100, 0.8), BiasClass::WeaklyBiased);
    EXPECT_EQ(classifyStream(20, 100, 0.8),
              BiasClass::StronglyNotTaken);
}

TEST(BiasClass, MidpointIsWeak)
{
    EXPECT_EQ(classifyStream(50, 100), BiasClass::WeaklyBiased);
}

} // namespace
} // namespace bpsim
