/** @file Tests for the Section 4 analysis driver. */

#include <gtest/gtest.h>

#include "analysis/bias_analysis.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/static_predictors.hh"
#include "trace/memory_trace.hh"

namespace bpsim
{
namespace
{

BranchRecord
cond(std::uint64_t pc, bool taken)
{
    BranchRecord record;
    record.pc = pc;
    record.target = pc + 32;
    record.type = BranchType::Conditional;
    record.taken = taken;
    return record;
}

TEST(BiasAnalysis, ResultMatchesPlainSimulation)
{
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x2000, i % 2 == 0));
    }
    BimodalPredictor for_analysis(6);
    auto reader = trace.reader();
    BiasAnalysis analysis(for_analysis, reader);
    analysis.run();

    BimodalPredictor for_sim(6);
    auto reader2 = trace.reader();
    const SimResult plain = simulate(for_sim, reader2);
    EXPECT_EQ(analysis.result().branches, plain.branches);
    EXPECT_EQ(analysis.result().mispredictions, plain.mispredictions);
}

TEST(BiasAnalysis, BreakdownSumsToTotalRate)
{
    MemoryTrace trace;
    for (int i = 0; i < 300; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x2004, i % 2 == 0));
        trace.append(cond(0x3008, false));
    }
    GsharePredictor predictor(6, 6);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const MispredictionBreakdown breakdown = analysis.breakdown();
    EXPECT_NEAR(breakdown.totalPercent(),
                analysis.result().mispredictionRate(), 1e-9);
    EXPECT_GE(breakdown.stPercent, 0.0);
    EXPECT_GE(breakdown.sntPercent, 0.0);
    EXPECT_GE(breakdown.wbPercent, 0.0);
}

TEST(BiasAnalysis, AttributesWeakErrorsToWbClass)
{
    // An alternating branch under a bimodal predictor: its stream is
    // WB (50% taken) and nearly all mispredictions land in WB.
    MemoryTrace trace;
    for (int i = 0; i < 400; ++i)
        trace.append(cond(0x1000, i % 2 == 0));
    BimodalPredictor predictor(6);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const MispredictionBreakdown breakdown = analysis.breakdown();
    EXPECT_GT(breakdown.wbPercent, 30.0);
    EXPECT_EQ(breakdown.stPercent, 0.0);
    EXPECT_EQ(breakdown.sntPercent, 0.0);
}

TEST(BiasAnalysis, CounterProfileSeesAliasedStreams)
{
    // Two opposite strongly biased branches aliasing one bimodal
    // counter: that counter must show a large non-dominant share.
    MemoryTrace trace;
    for (int i = 0; i < 200; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1040, false)); // aliases at 4 index bits
    }
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const CounterProfile profile = analysis.counterProfile();
    ASSERT_EQ(profile.activeCounters, 1u);
    EXPECT_NEAR(profile.counters[0].dominantShare(), 0.5, 1e-12);
    EXPECT_NEAR(profile.counters[0].nonDominantShare(), 0.5, 1e-12);
    EXPECT_EQ(profile.counters[0].wbShare(), 0.0);
}

TEST(BiasAnalysis, TransitionsCountInterleaving)
{
    // Strict interleave of an ST stream and an SNT stream on one
    // counter: every access changes class, so each stream's run is
    // broken once per pair.
    MemoryTrace trace;
    const int pairs = 100;
    for (int i = 0; i < pairs; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1040, false));
    }
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const TransitionCounts counts = analysis.countTransitions();
    // 2*pairs accesses alternate classes: every consecutive pair is
    // a transition (2*pairs - 1 of them), split evenly between the
    // two roles up to the odd one out.
    EXPECT_EQ(counts.total(), 2u * pairs - 1);
    EXPECT_EQ(counts.weak, 0u);
    EXPECT_NEAR(static_cast<double>(counts.dominant),
                static_cast<double>(counts.nonDominant), 1.0);
}

TEST(BiasAnalysis, NoTransitionsForIsolatedStreams)
{
    // Two branches on different counters never interleave classes.
    MemoryTrace trace;
    for (int i = 0; i < 100; ++i) {
        trace.append(cond(0x1000, true));
        trace.append(cond(0x1004, false));
    }
    BimodalPredictor predictor(6);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const TransitionCounts counts = analysis.countTransitions();
    EXPECT_EQ(counts.total(), 0u);
}

TEST(BiasAnalysis, RunIsIdempotent)
{
    MemoryTrace trace;
    for (int i = 0; i < 50; ++i)
        trace.append(cond(0x1000, true));
    BimodalPredictor predictor(6);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    analysis.run();
    const std::uint64_t branches = analysis.result().branches;
    analysis.run();
    EXPECT_EQ(analysis.result().branches, branches);
}

TEST(BiasAnalysisDeath, RequiresCounters)
{
    MemoryTrace trace;
    AlwaysTakenPredictor predictor;
    auto reader = trace.reader();
    EXPECT_EXIT((BiasAnalysis{predictor, reader}),
                ::testing::ExitedWithCode(1), "exposes none");
}

TEST(BiasAnalysisDeath, AccessBeforeRunPanics)
{
    MemoryTrace trace;
    BimodalPredictor predictor(4);
    auto reader = trace.reader();
    BiasAnalysis analysis(predictor, reader);
    EXPECT_DEATH(analysis.counterProfile(), "before run");
}

} // namespace
} // namespace bpsim
