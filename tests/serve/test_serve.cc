/**
 * @file
 * End-to-end tests of the campaign service daemon: a real
 * CampaignServer on a real unix-domain socket, driven by real
 * ServeClient connections. The invariants under test are the
 * service's contract:
 *
 *   - streamed results are byte-identical to the offline emitter,
 *     including when several clients share benchmarks and fuse into
 *     the same banked sweeps;
 *   - per-client result ordering is index order, always;
 *   - malformed requests, unknown benchmarks, over-budget campaigns
 *     and mid-campaign disconnects hurt only the client involved;
 *   - graceful stop drains every accepted job with zero lost or
 *     duplicated results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hh"
#include "campaign/emitters.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "workload/benchmarks.hh"

namespace bpsim::serve
{
namespace
{

/** Tiny synthetic specs so a whole stress run stays sub-second. */
std::optional<WorkloadSpec>
tinyBenchmark(const std::string &name)
{
    static const std::map<std::string, std::uint64_t> seeds = {
        {"tiny_a", 101}, {"tiny_b", 202}, {"tiny_c", 303}};
    const auto it = seeds.find(name);
    if (it == seeds.end())
        return std::nullopt;
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 150;
    spec.dynamicBranches = 20'000;
    spec.seed = it->second;
    return spec;
}

/** A deliberately heavy spec: a job over it runs for milliseconds
 *  while the daemon's reader loop turns around in microseconds, so
 *  tests that need earlier work still in flight (duplicate ids,
 *  disconnect shedding) resolve their races deterministically. */
std::optional<WorkloadSpec>
slowBenchmark(const std::string &name)
{
    if (name != "slow_a")
        return std::nullopt;
    WorkloadSpec spec;
    spec.name = name;
    spec.suite = "test";
    spec.staticBranches = 400;
    spec.dynamicBranches = 1'500'000;
    spec.seed = 404;
    return spec;
}

std::string
uniqueSocketPath(const std::string &tag)
{
    static std::atomic<unsigned> counter{0};
    return (std::filesystem::temp_directory_path() /
            ("bpsim-test-" + tag + "-" + std::to_string(::getpid()) +
             "-" + std::to_string(counter++) + ".sock"))
        .string();
}

CampaignServer::Options
testOptions(const std::string &tag)
{
    CampaignServer::Options opts;
    opts.socketPath = uniqueSocketPath(tag);
    opts.workers = 4;
    opts.maxPending = 4096;
    opts.resolveBenchmark = tinyBenchmark;
    return opts;
}

/** The offline reference for a request: Campaign::run() + emitter. */
std::string
offlineReference(const CampaignRequest &request, unsigned workers,
                 bool fused = true)
{
    TraceCache cache;
    std::vector<WorkloadSpec> specs;
    for (const std::string &name : request.benchmarks) {
        auto spec = tinyBenchmark(name);
        EXPECT_TRUE(spec.has_value()) << name;
        specs.push_back(
            scaledBenchmark(std::move(*spec), request.divisor));
    }
    Campaign campaign;
    campaign.setFusion(fused);
    SimConfig simConfig;
    simConfig.warmupBranches = request.warmup;
    campaign.addGrid(request.configs, resolveTraces(cache, specs),
                     simConfig);
    std::ostringstream os;
    writeResultsJson(os, campaign.run(workers), request.timing);
    return os.str();
}

std::string
runServed(ServeClient &client, const CampaignRequest &request)
{
    std::string error;
    const auto payloads = client.runCampaign(request, error);
    EXPECT_TRUE(payloads.has_value()) << error;
    if (!payloads)
        return "";
    return joinResultsJson(*payloads);
}

class ServeTest : public ::testing::Test
{
  protected:
    void startServer(CampaignServer::Options opts)
    {
        server = std::make_unique<CampaignServer>(std::move(opts));
        std::string error;
        ASSERT_TRUE(server->start(error)) << error;
    }

    ServeClient connectClient()
    {
        ServeClient client;
        std::string error;
        EXPECT_TRUE(client.connect(server->socketPath(), error))
            << error;
        return client;
    }

    void TearDown() override
    {
        if (server)
            server->stop();
    }

    std::unique_ptr<CampaignServer> server;
};

TEST_F(ServeTest, PingPong)
{
    startServer(testOptions("ping"));
    ServeClient client = connectClient();
    EXPECT_TRUE(client.ping());
}

TEST_F(ServeTest, StreamedResultsMatchOfflineByteForByte)
{
    startServer(testOptions("offline"));
    ServeClient client = connectClient();

    CampaignRequest request;
    request.id = "c1";
    request.configs = {"gshare:n=8", "bimode:d=7", "bimodal:n=7"};
    request.benchmarks = {"tiny_a", "tiny_b"};
    EXPECT_EQ(runServed(client, request), offlineReference(request, 2));

    // Divisor and warm-up request fields reach the jobs.
    request.id = "c2";
    request.divisor = 2;
    request.warmup = 1'000;
    EXPECT_EQ(runServed(client, request), offlineReference(request, 2));
}

TEST_F(ServeTest, TwoClientsFusedSweepsMatchSoloUnfusedRuns)
{
    // Satellite 4: two clients submit the same benchmark × same
    // fast-replay kind concurrently — their jobs are candidates for
    // the same banked sweep — and each client's stream must still be
    // byte-identical to a solo *unfused* offline run, at one worker
    // and at many.
    for (const unsigned workers : {1u, 4u}) {
        auto opts = testOptions("fused");
        opts.workers = workers;
        startServer(std::move(opts));

        CampaignRequest requestA;
        requestA.id = "clientA";
        requestA.configs = {"gshare:n=7", "gshare:n=8", "gshare:n=9",
                            "gshare:n=10"};
        requestA.benchmarks = {"tiny_a"};
        CampaignRequest requestB = requestA;
        requestB.id = "clientB";
        requestB.configs = {"gshare:n=8", "gshare:n=9", "gshare:n=11",
                            "gshare:n=12"};

        const std::string expectA =
            offlineReference(requestA, 1, /*fused=*/false);
        const std::string expectB =
            offlineReference(requestB, 1, /*fused=*/false);

        std::string gotA;
        std::string gotB;
        std::thread threadA([&] {
            ServeClient client = connectClient();
            gotA = runServed(client, requestA);
        });
        std::thread threadB([&] {
            ServeClient client = connectClient();
            gotB = runServed(client, requestB);
        });
        threadA.join();
        threadB.join();

        EXPECT_EQ(gotA, expectA) << "workers=" << workers;
        EXPECT_EQ(gotB, expectB) << "workers=" << workers;

        server->stop();
        server.reset();
    }
}

TEST_F(ServeTest, MalformedLinesGetErrorsAndTheConnectionSurvives)
{
    startServer(testOptions("malformed"));
    ServeClient client = connectClient();

    for (const std::string &bad :
         {std::string("this is not json"), std::string("{\"op\":42}"),
          std::string("{\"op\":\"campaign\"}"),
          std::string("{\"op\":\"campaign\",\"id\":\"x\","
                      "\"configs\":\"notalist\","
                      "\"benchmarks\":[\"tiny_a\"]}")}) {
        const auto reply = client.roundTrip(bad);
        ASSERT_TRUE(reply.has_value());
        const Event event = parseEvent(*reply);
        EXPECT_TRUE(event.kind == Event::Kind::Error ||
                    event.kind == Event::Kind::Rejected)
            << *reply;
    }

    // The daemon: unharmed. The same connection: still good.
    CampaignRequest request;
    request.id = "after-garbage";
    request.configs = {"gshare:n=8"};
    request.benchmarks = {"tiny_a"};
    EXPECT_EQ(runServed(client, request), offlineReference(request, 1));
    EXPECT_GE(server->stats().malformedRequests, 2u);
}

TEST_F(ServeTest, UnknownBenchmarkAndBadConfigArePerClientFailures)
{
    startServer(testOptions("reject"));
    ServeClient client = connectClient();

    CampaignRequest request;
    request.id = "nope";
    request.configs = {"gshare:n=8"};
    request.benchmarks = {"no_such_benchmark"};
    std::string error;
    EXPECT_FALSE(client.runCampaign(request, error).has_value());
    EXPECT_NE(error.find("unknown benchmark"), std::string::npos)
        << error;

    // A bad *config* is not a rejection: the job completes with
    // "ok":false in its payload, same as offline.
    request.id = "badcfg";
    request.configs = {"gshare:n=8", "no-such-predictor:x=1"};
    request.benchmarks = {"tiny_a"};
    EXPECT_EQ(runServed(client, request), offlineReference(request, 1));
}

TEST_F(ServeTest, OversizedAndOverCapacityCampaignsAreRejectedWhole)
{
    auto opts = testOptions("capacity");
    opts.maxJobsPerRequest = 4;
    opts.maxPending = 2;
    startServer(std::move(opts));
    ServeClient client = connectClient();

    CampaignRequest request;
    request.id = "toobig";
    request.configs = {"gshare:n=6", "gshare:n=7", "gshare:n=8"};
    request.benchmarks = {"tiny_a", "tiny_b"}; // 6 > cap of 4
    std::string error;
    EXPECT_FALSE(client.runCampaign(request, error).has_value());
    EXPECT_NE(error.find("exceeds"), std::string::npos) << error;

    // 3 jobs > maxPending 2: backpressure rejects all-or-nothing —
    // never a half-accepted grid.
    request.id = "overflow";
    request.benchmarks = {"tiny_a"};
    EXPECT_FALSE(client.runCampaign(request, error).has_value());
    EXPECT_NE(error.find("capacity"), std::string::npos) << error;
    EXPECT_EQ(server->stats().campaignsRejected, 2u);

    // Within both bounds: accepted and correct.
    request.id = "fits";
    request.configs = {"gshare:n=6", "gshare:n=7"};
    EXPECT_EQ(runServed(client, request), offlineReference(request, 1));
}

TEST_F(ServeTest, DuplicateInFlightCampaignIdIsRejected)
{
    auto opts = testOptions("dup");
    opts.workers = 1; // keep the first campaign in flight a while
    // Heavy jobs: the first campaign is reliably still in flight
    // when the reader reaches the duplicate line.
    opts.resolveBenchmark = slowBenchmark;
    startServer(std::move(opts));
    ServeClient client = connectClient();

    // Both campaign lines land in one write, so the daemon's reader
    // processes the duplicate immediately after accepting the first
    // — while the single worker is still chewing on its jobs.
    CampaignRequest request;
    request.id = "same";
    request.benchmarks = {"slow_a"};
    for (unsigned n = 6; n <= 13; ++n)
        request.configs.push_back("gshare:n=" + std::to_string(n));
    const std::string line = campaignRequestLine(request);
    ASSERT_TRUE(client.sendLine(line + line));

    // Scan the stream: the duplicate's rejection must show up; the
    // first campaign must still run to completion unharmed. Stop at
    // a second "done" too — were the duplicate wrongly accepted
    // (first campaign already finished), the stream would hold two
    // full campaigns and no rejection, and waiting for one would
    // block forever.
    bool sawRejection = false;
    std::size_t results = 0;
    unsigned dones = 0;
    while (!(sawRejection && dones >= 1) && dones < 2) {
        const auto reply = client.readLine();
        ASSERT_TRUE(reply.has_value()) << "stream ended early";
        const Event event = parseEvent(*reply);
        if (event.kind == Event::Kind::Rejected) {
            sawRejection = true;
            EXPECT_NE(event.error.find("already in flight"),
                      std::string::npos)
                << event.error;
        } else if (event.kind == Event::Kind::Result) {
            if (dones == 0) {
                EXPECT_EQ(event.index, results);
                ++results;
            }
        } else if (event.kind == Event::Kind::Done) {
            ++dones;
        }
    }
    EXPECT_TRUE(sawRejection)
        << "duplicate id was accepted (first campaign finished "
           "before the duplicate was processed)";
    EXPECT_EQ(results, request.jobCount());
}

TEST_F(ServeTest, MidCampaignDisconnectDoesNotDisturbOtherClients)
{
    auto opts = testOptions("disconnect");
    opts.workers = 1; // one worker: the grid cannot finish instantly
    // Fusion off so the doomed grid dispatches one heavy job at a
    // time: when the disconnect lands, undispatched jobs are still
    // queued and must be shed. (Fused, one bank could swallow the
    // whole grid before the disconnect is even noticed.)
    opts.fuse = false;
    opts.resolveBenchmark =
        [](const std::string &name) -> std::optional<WorkloadSpec> {
        if (auto slow = slowBenchmark(name))
            return slow;
        return tinyBenchmark(name);
    };
    startServer(std::move(opts));

    // Client A: a wide campaign, then vanish right after acceptance.
    {
        ServeClient clientA = connectClient();
        CampaignRequest wide;
        wide.id = "doomed";
        wide.benchmarks = {"slow_a"};
        for (unsigned n = 6; n <= 15; ++n)
            wide.configs.push_back("gshare:n=" + std::to_string(n));
        const auto reply =
            clientA.roundTrip(campaignRequestLine(wide));
        ASSERT_TRUE(reply.has_value());
        ASSERT_EQ(parseEvent(*reply).kind, Event::Kind::Accepted);
        clientA.disconnect();
    }

    // Client B on a fresh connection: full, correct service.
    ServeClient clientB = connectClient();
    CampaignRequest request;
    request.id = "healthy";
    request.configs = {"gshare:n=8", "bimode:d=7"};
    request.benchmarks = {"tiny_a"};
    EXPECT_EQ(runServed(clientB, request),
              offlineReference(request, 1));

    // The daemon sheds the dead client's undispatched work instead
    // of burning the pool on it (the exact count is a race between
    // the worker and the disconnect; shedding at all is the point).
    server->stop();
    EXPECT_GT(server->stats().disconnectCancelledJobs, 0u);
}

TEST_F(ServeTest, GracefulStopDrainsAcceptedCampaigns)
{
    auto opts = testOptions("drain");
    opts.workers = 2;
    startServer(std::move(opts));

    // Stop the server while the campaign is in flight; drain
    // semantics say the accepted campaign must still deliver every
    // result and its done event before teardown.
    ServeClient client = connectClient();
    CampaignRequest request;
    request.id = "draining";
    request.benchmarks = {"tiny_a", "tiny_b", "tiny_c"};
    for (unsigned n = 6; n <= 13; ++n)
        request.configs.push_back("gshare:n=" + std::to_string(n));
    const std::string expected = offlineReference(request, 2);

    // Wait for acceptance first — a stop() that wins the race to the
    // admission check would just reject ("server draining").
    const auto accepted =
        client.roundTrip(campaignRequestLine(request));
    ASSERT_TRUE(accepted.has_value());
    ASSERT_EQ(parseEvent(*accepted).kind, Event::Kind::Accepted);

    std::thread stopper([&] { server->stop(); });
    std::vector<std::string> payloads;
    for (;;) {
        const auto reply = client.readLine();
        ASSERT_TRUE(reply.has_value()) << "stream ended early";
        const Event event = parseEvent(*reply);
        if (event.kind == Event::Kind::Result) {
            ASSERT_EQ(event.index, payloads.size());
            payloads.push_back(event.payload);
        } else if (event.kind == Event::Kind::Done) {
            EXPECT_EQ(event.jobs, payloads.size());
            break;
        }
    }
    EXPECT_EQ(joinResultsJson(payloads), expected);
    stopper.join();

    // After stop: no new connections.
    ServeClient late;
    std::string error;
    EXPECT_FALSE(late.connect(server->socketPath(), error));
}

TEST_F(ServeTest, NonReadingClientCannotStallOtherClients)
{
    // Result delivery runs inside the scheduler's serialized
    // callback section. A client that submits a large campaign and
    // then never reads lets its socket buffer fill; without a send
    // timeout the blocked write would stall every other client's
    // results and hang stop()'s drain forever. With the timeout the
    // stalled session is marked dead and only its own stream dies.
    auto opts = testOptions("stall");
    opts.workers = 2;
    opts.sendTimeoutMs = 200;
    startServer(std::move(opts));

    ServeClient stalled = connectClient();
    CampaignRequest big;
    big.id = "never-read";
    big.benchmarks = {"tiny_a", "tiny_b", "tiny_c"};
    big.divisor = 20; // tiny jobs; the *result bytes* are the load
    for (unsigned n = 0; n < 700; ++n)
        big.configs.push_back("gshare:n=" + std::to_string(4 + n % 8));
    ASSERT_TRUE(stalled.sendLine(campaignRequestLine(big)));

    // A well-behaved client served concurrently must still get
    // complete, ordered, offline-identical results.
    ServeClient good = connectClient();
    CampaignRequest request;
    request.id = "good";
    request.configs = {"gshare:n=8", "bimodal:n=8"};
    request.benchmarks = {"tiny_a", "tiny_b"};
    EXPECT_EQ(runServed(good, request), offlineReference(request, 2));

    // And the daemon must drain cleanly despite the stalled session.
    server->stop();
    const auto sched = server->schedulerStats();
    EXPECT_EQ(sched.pending, 0u);
    EXPECT_EQ(sched.inFlight, 0u);
}

TEST_F(ServeTest, StressManyConcurrentMixedCampaigns)
{
    // The acceptance bar: hundreds of concurrent mixed campaigns
    // across many clients — per-client ordering intact, every
    // result bit-identical to the offline reference, clean drain
    // with zero lost or duplicated results.
    constexpr unsigned kClients = 8;
    constexpr unsigned kCampaignsPerClient = 25; // 200 campaigns

    auto opts = testOptions("stress");
    opts.workers = 4;
    startServer(std::move(opts));

    // A small palette of request shapes; every campaign is one of
    // these, so the offline references are computed once. The
    // palette mixes fusable sweeps, mixed kinds, failing configs,
    // divisors and warm-up.
    std::vector<CampaignRequest> palette;
    {
        CampaignRequest r;
        r.configs = {"gshare:n=7", "gshare:n=8", "gshare:n=9"};
        r.benchmarks = {"tiny_a"};
        palette.push_back(r);
        r.configs = {"bimode:d=7", "gshare:n=8", "bimodal:n=7"};
        r.benchmarks = {"tiny_b", "tiny_c"};
        palette.push_back(r);
        r.configs = {"gshare:n=8", "broken-config"};
        r.benchmarks = {"tiny_a", "tiny_b"};
        palette.push_back(r);
        r.configs = {"gshare:n=10"};
        r.benchmarks = {"tiny_c"};
        r.divisor = 2;
        palette.push_back(r);
        r.configs = {"bimode:d=8"};
        r.benchmarks = {"tiny_a", "tiny_c"};
        r.divisor = 1;
        r.warmup = 2'000;
        palette.push_back(r);
    }
    std::vector<std::string> references;
    references.reserve(palette.size());
    for (const CampaignRequest &request : palette)
        references.push_back(offlineReference(request, 2));

    std::atomic<unsigned> mismatches{0};
    std::atomic<unsigned> failures{0};
    std::atomic<unsigned> completed{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            ServeClient client;
            std::string error;
            if (!client.connect(server->socketPath(), error)) {
                ++failures;
                return;
            }
            for (unsigned i = 0; i < kCampaignsPerClient; ++i) {
                const std::size_t shape =
                    (c * kCampaignsPerClient + i) % palette.size();
                CampaignRequest request = palette[shape];
                request.id = "client" + std::to_string(c) + "-" +
                             std::to_string(i);
                // runCampaign() verifies per-campaign index order
                // and exact result counts (no loss, no duplicates).
                const auto payloads =
                    client.runCampaign(request, error);
                if (!payloads) {
                    ++failures;
                    continue;
                }
                if (joinResultsJson(*payloads) != references[shape])
                    ++mismatches;
                ++completed;
            }
        });
    }
    for (std::thread &thread : clients)
        thread.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(completed.load(), kClients * kCampaignsPerClient);

    const auto stats = server->stats();
    EXPECT_EQ(stats.campaignsAccepted,
              kClients * kCampaignsPerClient);
    EXPECT_EQ(stats.campaignsRejected, 0u);

    // Clean drain: accepted == completed jobs, nothing stuck.
    server->stop();
    const auto sched = server->schedulerStats();
    EXPECT_EQ(sched.submitted, sched.completed + sched.cancelled);
    EXPECT_EQ(sched.pending, 0u);
    EXPECT_EQ(sched.inFlight, 0u);
    EXPECT_EQ(sched.cancelled, 0u);
    EXPECT_EQ(sched.callbackExceptions, 0u);
}

} // namespace
} // namespace bpsim::serve
