/** @file Tests for the campaign service wire protocol. */

#include <gtest/gtest.h>

#include <string>

#include "serve/client.hh"
#include "serve/protocol.hh"

namespace bpsim::serve
{
namespace
{

TEST(Protocol, ParsesCampaignRequest)
{
    const Request request = parseRequest(
        "{\"op\":\"campaign\",\"id\":\"sweep1\","
        "\"configs\":[\"gshare:n=10\",\"bimode:d=9\"],"
        "\"benchmarks\":[\"go\",\"compress\"],"
        "\"divisor\":5,\"warmup\":100,\"timing\":true}");
    ASSERT_EQ(request.op, Request::Op::Campaign);
    EXPECT_EQ(request.campaign.id, "sweep1");
    ASSERT_EQ(request.campaign.configs.size(), 2u);
    EXPECT_EQ(request.campaign.configs[1], "bimode:d=9");
    ASSERT_EQ(request.campaign.benchmarks.size(), 2u);
    EXPECT_EQ(request.campaign.divisor, 5u);
    EXPECT_EQ(request.campaign.warmup, 100u);
    EXPECT_TRUE(request.campaign.timing);
    EXPECT_EQ(request.campaign.jobCount(), 4u);
}

TEST(Protocol, RequestDefaultsAreFullSizeNoWarmupNoTiming)
{
    const Request request = parseRequest(
        "{\"op\":\"campaign\",\"id\":\"x\","
        "\"configs\":[\"gshare:n=8\"],\"benchmarks\":[\"go\"]}");
    ASSERT_EQ(request.op, Request::Op::Campaign);
    EXPECT_EQ(request.campaign.divisor, 1u);
    EXPECT_EQ(request.campaign.warmup, 0u);
    EXPECT_FALSE(request.campaign.timing);
}

TEST(Protocol, RejectsMalformedRequests)
{
    EXPECT_EQ(parseRequest("not json").op, Request::Op::Invalid);
    EXPECT_EQ(parseRequest("[1,2]").op, Request::Op::Invalid);
    EXPECT_EQ(parseRequest("{\"op\":\"nope\"}").op,
              Request::Op::Invalid);
    // Campaign without an id.
    EXPECT_EQ(parseRequest("{\"op\":\"campaign\","
                           "\"configs\":[\"a\"],"
                           "\"benchmarks\":[\"b\"]}")
                  .op,
              Request::Op::Invalid);
    // Empty grid axes.
    EXPECT_EQ(parseRequest("{\"op\":\"campaign\",\"id\":\"x\","
                           "\"configs\":[],\"benchmarks\":[\"b\"]}")
                  .op,
              Request::Op::Invalid);
    // Wrongly-typed axes.
    const Request request =
        parseRequest("{\"op\":\"campaign\",\"id\":\"x\","
                     "\"configs\":[1],\"benchmarks\":[\"b\"]}");
    EXPECT_EQ(request.op, Request::Op::Invalid);
    EXPECT_FALSE(request.error.empty());
}

TEST(Protocol, ParsesPingAndStats)
{
    EXPECT_EQ(parseRequest("{\"op\":\"ping\"}").op, Request::Op::Ping);
    EXPECT_EQ(parseRequest("{\"op\":\"stats\"}").op,
              Request::Op::Stats);
}

TEST(Protocol, EventsRoundTrip)
{
    Event event = parseEvent(acceptedEvent("c1", 42));
    EXPECT_EQ(event.kind, Event::Kind::Accepted);
    EXPECT_EQ(event.id, "c1");
    EXPECT_EQ(event.jobs, 42u);

    event = parseEvent(rejectedEvent("c2", "server at capacity"));
    EXPECT_EQ(event.kind, Event::Kind::Rejected);
    EXPECT_EQ(event.error, "server at capacity");

    event = parseEvent(doneEvent("c3", 7));
    EXPECT_EQ(event.kind, Event::Kind::Done);
    EXPECT_EQ(event.jobs, 7u);

    event = parseEvent(errorEvent("bad line"));
    EXPECT_EQ(event.kind, Event::Kind::Error);
    EXPECT_EQ(event.error, "bad line");

    EXPECT_EQ(parseEvent(pongEvent()).kind, Event::Kind::Pong);

    CampaignScheduler::Stats stats;
    stats.submitted = 5;
    stats.fusedBanks = 2;
    event = parseEvent(statsEvent(stats));
    EXPECT_EQ(event.kind, Event::Kind::Stats);
}

TEST(Protocol, ResultPayloadSurvivesByteExactly)
{
    // Payload extraction must never round-trip through the parser —
    // this number formatting has to come back byte-for-byte.
    const std::string payload =
        "{\"ok\":true,\"result\":{\"mispredictionRate\":"
        "21.102196384345014,\"note\":\"has \\\"quotes\\\" and "
        "\\u00e9\"}}";
    const std::string line = resultEvent("c1", 3, payload);
    const Event event = parseEvent(line);
    ASSERT_EQ(event.kind, Event::Kind::Result);
    EXPECT_EQ(event.id, "c1");
    EXPECT_EQ(event.index, 3u);
    EXPECT_EQ(event.payload, payload);
}

TEST(Protocol, PayloadMarkerInsideIdDoesNotConfuseExtraction)
{
    // A hostile id trying to smuggle the payload marker: its quotes
    // are escaped on the wire, so extraction still finds the real
    // payload member.
    const std::string id = "x\",\"payload\":\"fake";
    const std::string payload = "{\"ok\":false}";
    const std::string line = resultEvent(id, 0, payload);
    EXPECT_EQ(extractRawPayload(line), payload);
    const Event event = parseEvent(line);
    ASSERT_EQ(event.kind, Event::Kind::Result);
    EXPECT_EQ(event.id, id);
    EXPECT_EQ(event.payload, payload);
}

TEST(Protocol, CampaignRequestLineRoundTrips)
{
    CampaignRequest request;
    request.id = "sweep \"q\"";
    request.configs = {"gshare:n=10", "bimode:d=9"};
    request.benchmarks = {"go"};
    request.divisor = 5;
    request.warmup = 10;
    request.timing = true;

    const Request parsed = parseRequest(campaignRequestLine(request));
    ASSERT_EQ(parsed.op, Request::Op::Campaign);
    EXPECT_EQ(parsed.campaign.id, request.id);
    EXPECT_EQ(parsed.campaign.configs, request.configs);
    EXPECT_EQ(parsed.campaign.benchmarks, request.benchmarks);
    EXPECT_EQ(parsed.campaign.divisor, 5u);
    EXPECT_EQ(parsed.campaign.warmup, 10u);
    EXPECT_TRUE(parsed.campaign.timing);
}

TEST(Protocol, JoinResultsJsonMatchesOfflineFraming)
{
    EXPECT_EQ(joinResultsJson({}), "[\n]\n");
    EXPECT_EQ(joinResultsJson({"{\"a\":1}"}), "[\n  {\"a\":1}\n]\n");
    EXPECT_EQ(joinResultsJson({"{\"a\":1}", "{\"b\":2}"}),
              "[\n  {\"a\":1},\n  {\"b\":2}\n]\n");
}

} // namespace
} // namespace bpsim::serve
